//! `recblock-serve`: a concurrent SpTRSV solve service.
//!
//! The paper's central economics: preprocessing a triangular factor costs
//! about 9× one solve (Table 5), so the win comes from *reusing* the
//! preprocessed plan across many right-hand sides. This crate turns that
//! observation into a serving layer in front of
//! [`recblock::RecBlockSolver`]:
//!
//! * a sharded, capacity-bounded, single-flight **plan cache** keyed by
//!   matrix fingerprint ([`cache::PlanCache`]) — each distinct matrix is
//!   preprocessed once, no matter how many threads submit it concurrently;
//! * a **batching engine** ([`batch`]) that coalesces queued right-hand
//!   sides for the same matrix into one fused multi-RHS solve
//!   ([`recblock::RecBlockSolver::solve_multi`]), amortising matrix traffic
//!   the same way the paper's multi-RHS runs do;
//! * **bounded queues with backpressure** — [`SolveService::try_submit`]
//!   fails fast with [`ServeError::Overloaded`] instead of letting latency
//!   grow without bound, and [`SolveService::shutdown`] drains everything
//!   already accepted;
//! * built-in lock-free **metrics** ([`MetricsSnapshot`]): cache hit/miss,
//!   preprocessing time saved, batch-size and latency histograms, queue
//!   depth.
//!
//! ```
//! use recblock_serve::{ServeConfig, SolveService};
//! use recblock_matrix::generate;
//!
//! let service = SolveService::<f64>::new(ServeConfig::default().with_workers(2));
//! let l = generate::random_lower::<f64>(500, 4.0, 7);
//! let b = vec![1.0; 500];
//! let handle = service.submit(&l, b).unwrap();
//! let x = handle.wait().unwrap();
//! assert_eq!(x.len(), 500);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod config;
pub mod error;
pub mod health;
pub mod metrics;
mod persist;
pub mod prometheus;
mod tuner;
mod worker;

pub use cache::{Fetched, PlanCache, PlanKey, PlanSource};
pub use config::{ServeConfig, StoreOptions};
pub use error::ServeError;
pub use health::Health;
pub use metrics::{
    Metrics, MetricsSnapshot, Stage, StageSnapshot, TenantCounters, TenantSnapshot, TraceHop,
    TuneState,
};

use batch::{BatchQueue, Pending, Reply};
use recblock::RecBlockSolver;
use recblock_matrix::{Csr, Scalar};
use recblock_store::{ArtifactKind, PlanStore};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lock that shrugs off poison: a panic while the lock was held cannot
/// have left these structures inconsistent (they hold join handles and an
/// optional persister, both of which tolerate partial drains), and the
/// drain path must stay usable precisely when panics have happened.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Delivery target for routed (transport-submitted) requests.
///
/// An in-process submit gets a dedicated [`SolveHandle`]; a transport such
/// as the TCP front end instead shares **one** sink across every request it
/// has in flight and tells answers apart by the `tag` it chose at submit
/// time. `deliver` is called from a worker thread exactly once per routed
/// request — implementations should hand the result off quickly (push to a
/// queue, wake an event loop) and never block on the network.
pub trait ResponseSink<S>: Send + Sync {
    /// Deliver the answer for the request submitted with `tag`. On success
    /// the vector is the solution — physically the same buffer the request
    /// arrived in, so pooling transports can recycle it.
    fn deliver(&self, tag: u64, result: Result<Vec<S>, ServeError>);
}

/// A resolved plan together with the tier that produced it.
pub type ResolvedPlan<S> = (Arc<RecBlockSolver<S>>, PlanSource);

/// The receiving end of one submitted solve.
///
/// Dropping the handle abandons the result (the solve still runs; the
/// answer is discarded).
#[derive(Debug)]
pub struct SolveHandle<S> {
    rx: mpsc::Receiver<Result<Vec<S>, ServeError>>,
}

impl<S> SolveHandle<S> {
    /// Block until the solution (or error) arrives.
    pub fn wait(self) -> Result<Vec<S>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Cancelled))
    }

    /// Non-blocking poll: `None` while the solve is still in flight.
    pub fn try_wait(&self) -> Option<Result<Vec<S>, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// Multithreaded solve service. See the crate docs for the architecture.
pub struct SolveService<S: Scalar> {
    config: ServeConfig,
    cache: Arc<PlanCache<S>>,
    queue: Arc<BatchQueue<S>>,
    metrics: Arc<Metrics>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    store: Option<Arc<PlanStore>>,
    persister: Mutex<Option<persist::Persister<S>>>,
    tuner: Mutex<Option<tuner::CanaryTuner<S>>>,
}

impl<S: Scalar> SolveService<S> {
    /// Start the service: allocates the cache and queue, spawns
    /// `config.workers` solver threads. When `config.store` is set, opens
    /// the persistent plan store (a failure to open degrades to running
    /// without the tier, counted in `store_errors`) and, with warm-start
    /// enabled, pre-populates the cache from it, newest plans first.
    pub fn new(config: ServeConfig) -> Self {
        let metrics = Arc::new(Metrics::default());
        let cache =
            Arc::new(PlanCache::new(config.cache_capacity, config.cache_shards, metrics.clone()));
        let queue = Arc::new(BatchQueue::new(config.queue_capacity, metrics.clone()));
        let workers = (0..config.workers)
            .map(|i| {
                let (q, m, mb) = (queue.clone(), metrics.clone(), config.max_batch);
                std::thread::Builder::new()
                    .name(format!("recblock-serve-{i}"))
                    // Supervisor loop: the worker's own batch loop already
                    // contains solver panics, so an unwind escaping
                    // `worker::run` means the loop machinery itself broke.
                    // Respawn in place (same thread, fresh call) rather
                    // than losing a worker for the life of the service.
                    .spawn(move || loop {
                        let (q2, m2) = (q.clone(), m.clone());
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                            worker::run(q2, m2, mb)
                        })) {
                            Ok(()) => break,
                            Err(_) => {
                                m.worker_panics.fetch_add(1, Relaxed);
                            }
                        }
                    })
                    .expect("spawn solve worker")
            })
            .collect();
        let store = config.store.as_ref().and_then(|opts| match PlanStore::open(&opts.dir) {
            Ok(s) => {
                // Boot-time recovery scan: quarantine torn or corrupt plan
                // files and sweep stale temp files *before* warm-start reads
                // the directory. Quarantined plans simply miss on the next
                // load and get rebuilt.
                match s.recover() {
                    Ok(report) => {
                        metrics
                            .store_quarantined
                            .fetch_add(report.quarantined.len() as u64, Relaxed);
                    }
                    Err(_) => {
                        metrics.store_errors.fetch_add(1, Relaxed);
                    }
                }
                Some(Arc::new(s))
            }
            Err(_) => {
                metrics.store_errors.fetch_add(1, Relaxed);
                None
            }
        });
        if let (Some(store), Some(opts)) = (&store, &config.store) {
            if opts.warm_start {
                warm_start_cache(&cache, store, &metrics, config.cache_capacity);
            }
        }
        let persister = match (&store, &config.store) {
            (Some(store), Some(opts)) if opts.write_back => {
                Some(persist::Persister::spawn(store.clone(), metrics.clone()))
            }
            _ => None,
        };
        let tuner = config.canary_tune.then(|| {
            tuner::CanaryTuner::spawn(
                cache.clone(),
                metrics.clone(),
                persister.as_ref().and_then(|p| p.share()),
            )
        });
        SolveService {
            config,
            cache,
            queue,
            metrics,
            workers: Mutex::new(workers),
            store,
            persister: Mutex::new(persister),
            tuner: Mutex::new(tuner),
        }
    }

    /// Submit a solve, failing fast with [`ServeError::Overloaded`] when
    /// the queue is at capacity. The plan is looked up (or built, on the
    /// calling thread, single-flight) before the request is enqueued.
    pub fn try_submit(&self, l: &Csr<S>, rhs: Vec<S>) -> Result<SolveHandle<S>, ServeError> {
        self.submit_inner(l, rhs, false)
    }

    /// Submit a solve, blocking while the queue is full (still fails with
    /// [`ServeError::ShuttingDown`] once shutdown begins).
    pub fn submit(&self, l: &Csr<S>, rhs: Vec<S>) -> Result<SolveHandle<S>, ServeError> {
        self.submit_inner(l, rhs, true)
    }

    fn submit_inner(
        &self,
        l: &Csr<S>,
        rhs: Vec<S>,
        block: bool,
    ) -> Result<SolveHandle<S>, ServeError> {
        if rhs.len() != l.nrows() {
            return Err(ServeError::BadRequest { expected: l.nrows(), actual: rhs.len() });
        }
        let key = PlanKey::of(l);
        let t0 = Instant::now();
        let (plan, _) = self.resolve_plan(key, l)?;
        self.metrics.record_stage(Stage::CacheLookup, t0.elapsed());
        self.observe_for_tuning(key, &plan, &rhs);
        let (tx, rx) = mpsc::channel();
        let req = Pending { rhs, reply: Reply::Channel(tx), submitted: Instant::now() };
        if block {
            self.queue.push_blocking(key, &plan, req)?;
        } else {
            self.queue.try_push(key, &plan, req)?;
        }
        Ok(SolveHandle { rx })
    }

    /// Submit a solve against an already-resolved plan, routing the answer
    /// to `sink` with `tag` instead of a per-request handle. This is the
    /// transport boundary: the network front end resolves the plan once
    /// (via [`SolveService::resolve_key`]), then pushes right-hand sides
    /// through here with pooled buffers — the path performs no allocation
    /// in steady state and fails fast with [`ServeError::Overloaded`] when
    /// the queue is at capacity.
    pub fn submit_routed(
        &self,
        key: PlanKey,
        plan: &Arc<RecBlockSolver<S>>,
        rhs: Vec<S>,
        tag: u64,
        sink: &Arc<dyn ResponseSink<S>>,
    ) -> Result<(), ServeError> {
        if rhs.len() != plan.n() {
            return Err(ServeError::BadRequest { expected: plan.n(), actual: rhs.len() });
        }
        self.observe_for_tuning(key, plan, &rhs);
        let req = Pending {
            rhs,
            reply: Reply::Routed { tag, sink: sink.clone() },
            submitted: Instant::now(),
        };
        self.queue.try_push(key, plan, req)
    }

    /// Resolve the plan for `key` **without building**: in-memory cache
    /// first, then the persistent store (the hit is promoted into the
    /// cache). `Ok(None)` when neither tier has it — the transport path
    /// cannot rebuild because a wire request carries the fingerprint, not
    /// the matrix; clients precompute plans with `planctl precompute`.
    pub fn resolve_key(&self, key: PlanKey) -> Result<Option<ResolvedPlan<S>>, ServeError> {
        if let Some(found) = self.cache.probe(key) {
            return found.map(|plan| Some((plan, PlanSource::Cache)));
        }
        let Some(store) = &self.store else { return Ok(None) };
        let t0 = Instant::now();
        match store.load::<S>(&key) {
            Ok(Some(loaded)) => {
                let load_time = t0.elapsed();
                self.metrics.record_stage(Stage::StoreLoad, load_time);
                self.metrics.store_hits.fetch_add(1, Relaxed);
                self.metrics.store_bytes_read.fetch_add(loaded.bytes as u64, Relaxed);
                self.metrics.store_load_ns.fetch_add(load_time.as_nanos() as u64, Relaxed);
                self.metrics.preprocess_saved_ns.fetch_add(
                    std::time::Duration::from_secs_f64(loaded.meta.build_cost.max(0.0)).as_nanos()
                        as u64,
                    Relaxed,
                );
                let plan = Arc::new(loaded.into_solver());
                self.cache.insert(key, plan.clone());
                Ok(Some((plan, PlanSource::Store)))
            }
            Ok(None) => {
                self.metrics.record_stage(Stage::StoreLoad, t0.elapsed());
                self.metrics.store_misses.fetch_add(1, Relaxed);
                Ok(None)
            }
            Err(_) => {
                self.metrics.record_stage(Stage::StoreLoad, t0.elapsed());
                self.metrics.store_errors.fetch_add(1, Relaxed);
                Ok(None)
            }
        }
    }

    /// The shared metrics instance, for transports that register
    /// per-tenant counter slices (see [`Metrics::tenant`]).
    pub fn shared_metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// Keys of every plan currently resident in the cache — what a
    /// draining cluster node must hand to its successors before leaving.
    pub fn warm_keys(&self) -> Vec<PlanKey> {
        self.cache.keys()
    }

    /// The plan for `key` as verified `.rbplan` bytes, ready to ship to a
    /// peer verbatim (the embedded checksums travel with it). Prefers the
    /// persistent store's copy (already encoded); falls back to encoding
    /// the cached solver. `Ok(None)` when neither tier has the plan.
    /// Matrix bytes never appear — the file holds the preprocessed plan,
    /// keyed by fingerprint + value digest like every other tier.
    pub fn export_plan_bytes(&self, key: PlanKey) -> Result<Option<Vec<u8>>, ServeError> {
        if let Some(store) = &self.store {
            // Flush first so a plan built moments ago (still queued for
            // write-back) is exportable from disk.
            self.flush_store();
            match store.export_bytes(&key) {
                Ok(Some(bytes)) => return Ok(Some(bytes)),
                Ok(None) => {}
                Err(_) => {
                    self.metrics.store_errors.fetch_add(1, Relaxed);
                }
            }
        }
        match self.cache.probe(key) {
            Some(Ok(plan)) => Ok(Some(recblock_store::encode_plan(
                plan.blocked(),
                &key,
                plan.preprocess_time().as_secs_f64(),
            ))),
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }

    /// Accept `.rbplan` bytes produced by a peer's
    /// [`SolveService::export_plan_bytes`]: verify end to end (magic,
    /// version, both checksums, embedded key must equal `key`), decode,
    /// install in the cache, and persist through the store when one is
    /// configured — so the plan survives a restart without ever being
    /// rebuilt. Rejected bytes leave both tiers untouched.
    pub fn import_plan_bytes(&self, key: PlanKey, bytes: &[u8]) -> Result<(), ServeError> {
        let fail =
            |e: recblock_store::StoreError| ServeError::PlanBuild(format!("plan import: {e}"));
        let meta = recblock_store::verify_file(bytes).map_err(fail)?;
        if meta.key != key {
            return Err(ServeError::PlanBuild(format!(
                "plan import: bytes are for {}, not {}",
                meta.key, key
            )));
        }
        let (meta, blocked) = recblock_store::decode_plan::<S>(bytes).map_err(fail)?;
        let solver = RecBlockSolver::from_blocked(
            blocked,
            std::time::Duration::from_secs_f64(meta.build_cost.max(0.0)),
        );
        self.cache.insert(key, Arc::new(solver));
        if let Some(store) = &self.store {
            match store.import_bytes(&key, bytes) {
                Ok(_) => {
                    self.metrics.store_writes.fetch_add(1, Relaxed);
                }
                Err(_) => {
                    self.metrics.store_errors.fetch_add(1, Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Right-hand sides the request queue can still accept before
    /// `try_push` would report [`ServeError::Overloaded`]. Advisory when
    /// other submitters race; a transport uses it to hold work in its own
    /// fair queue instead of bouncing it off a full compute queue.
    pub fn queue_available(&self) -> usize {
        self.queue.available()
    }

    /// Resolve the plan for `key`, trying tiers in order: in-memory cache,
    /// persistent store, fresh build. A freshly built plan is handed to
    /// the background persister (when write-back is on); any store failure
    /// is counted and silently degrades to rebuilding.
    fn resolve_plan(
        &self,
        key: PlanKey,
        l: &Csr<S>,
    ) -> Result<(Arc<RecBlockSolver<S>>, PlanSource), ServeError> {
        let (plan, source) = self.cache.get_or_fetch(key, || {
            if let Some(store) = &self.store {
                let t0 = Instant::now();
                match store.load::<S>(&key) {
                    Ok(Some(loaded)) => {
                        let load_time = t0.elapsed();
                        self.metrics.record_stage(Stage::StoreLoad, load_time);
                        self.metrics.store_hits.fetch_add(1, Relaxed);
                        self.metrics.store_bytes_read.fetch_add(loaded.bytes as u64, Relaxed);
                        self.metrics.store_load_ns.fetch_add(load_time.as_nanos() as u64, Relaxed);
                        // The load dodged this much preprocessing — the
                        // same quantity a cache hit credits.
                        self.metrics.preprocess_saved_ns.fetch_add(
                            std::time::Duration::from_secs_f64(loaded.meta.build_cost.max(0.0))
                                .as_nanos() as u64,
                            Relaxed,
                        );
                        return Ok(Fetched::Loaded(loaded.into_solver()));
                    }
                    Ok(None) => {
                        self.metrics.record_stage(Stage::StoreLoad, t0.elapsed());
                        self.metrics.store_misses.fetch_add(1, Relaxed);
                    }
                    Err(_) => {
                        // Failed loads still get a span — the fallback path
                        // must be visible in the stage histograms.
                        self.metrics.record_stage(Stage::StoreLoad, t0.elapsed());
                        self.metrics.store_errors.fetch_add(1, Relaxed);
                    }
                }
            }
            RecBlockSolver::new(l, self.config.solver.clone()).map(Fetched::Built)
        })?;
        if source == PlanSource::Built {
            if let Some(persister) = &*lock_unpoisoned(&self.persister) {
                persister.enqueue(key, plan.clone());
            }
        }
        Ok((plan, source))
    }

    /// Preprocess (or fetch the cached plan for) `l` without solving —
    /// useful to warm the cache before traffic arrives.
    pub fn warm(&self, l: &Csr<S>) -> Result<(), ServeError> {
        self.warm_status(l).map(|_| ())
    }

    /// As [`SolveService::warm`], additionally reporting where the plan
    /// came from: already cached, loaded from the persistent store, or
    /// built fresh.
    pub fn warm_status(&self, l: &Csr<S>) -> Result<PlanSource, ServeError> {
        let key = PlanKey::of(l);
        self.resolve_plan(key, l).map(|(_, source)| source)
    }

    /// Block until every plan queued for background persistence is on
    /// disk. A no-op when the store tier or write-back is disabled.
    pub fn flush_store(&self) {
        if let Some(persister) = &*lock_unpoisoned(&self.persister) {
            persister.flush();
        }
    }

    /// Hand one observed solve to the canary tuner, when it is running.
    fn observe_for_tuning(&self, key: PlanKey, plan: &Arc<RecBlockSolver<S>>, rhs: &[S]) {
        if let Some(tuner) = &*lock_unpoisoned(&self.tuner) {
            tuner.observe(key, plan, rhs);
        }
    }

    /// Block until the canary tuner has measured every observed sample
    /// (deterministic convergence for tests and drains). A no-op when
    /// canary tuning is off. Does *not* wait for tuned-plan write-back —
    /// chain [`SolveService::flush_store`] for that.
    pub fn flush_tuning(&self) {
        if let Some(tuner) = &*lock_unpoisoned(&self.tuner) {
            tuner.flush();
        }
    }

    /// Current service health, derived live from the evidence counters:
    /// [`Health::Draining`] once a drain began, [`Health::Degraded`] when
    /// resilience machinery has fired (contained worker panics, quarantined
    /// plan files), [`Health::Healthy`] otherwise.
    pub fn health(&self) -> Health {
        self.metrics.health()
    }

    /// Point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Plans currently resident in the cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Queued right-hand sides right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Graceful shutdown: new submits are refused, workers drain every
    /// accepted request, threads are joined. Returns the final metrics.
    /// With zero workers, whatever is still queued is cancelled (each
    /// requester receives [`ServeError::ShuttingDown`]).
    pub fn shutdown(self) -> MetricsSnapshot {
        self.drain()
    }

    /// Graceful drain through a shared reference: refuse new submits,
    /// join the workers, cancel anything unreachable, flush the write-back
    /// queue. **Idempotent and panic-safe**: a second call (or a call
    /// racing [`SolveService::shutdown`]/`Drop`) finds the handles already
    /// taken and returns without blocking, and a panic mid-drain cannot
    /// poison the next caller — the handle locks are taken
    /// poison-tolerantly and joins happen *outside* them.
    pub fn drain(&self) -> MetricsSnapshot {
        self.metrics.set_draining();
        self.queue.begin_shutdown();
        // Take the handles under the lock, join outside it: a concurrent
        // second drain sees an empty vec and falls through immediately
        // instead of blocking behind our joins.
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = lock_unpoisoned(&self.workers);
            workers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        // Only reachable work left is the zero-worker case.
        self.queue.cancel_remaining();
        // Stop the tuner *before* the persister: it holds a persist
        // handle (keeping the writer's channel alive), and its final
        // verdicts may enqueue tuned plans for write-back.
        let tuner = lock_unpoisoned(&self.tuner).take();
        if let Some(mut tuner) = tuner {
            tuner.shutdown();
        }
        // Drain the write-back queue so accepted plans reach disk. Same
        // take-then-work-outside-the-lock shape as the worker handles.
        let persister = lock_unpoisoned(&self.persister).take();
        if let Some(mut persister) = persister {
            persister.shutdown();
        }
        self.metrics.snapshot()
    }
}

/// Pre-populate `cache` from `store`: newest plans first, matching scalar
/// type and artifact kind only, up to `capacity` plans. Corrupt or stale
/// files are counted and skipped — warm-start must never fail the boot.
fn warm_start_cache<S: Scalar>(
    cache: &PlanCache<S>,
    store: &PlanStore,
    metrics: &Metrics,
    capacity: usize,
) {
    let entries = match store.entries() {
        Ok(e) => e,
        Err(_) => {
            metrics.store_errors.fetch_add(1, Relaxed);
            return;
        }
    };
    let mut loaded = 0usize;
    for entry in entries {
        if loaded >= capacity {
            break;
        }
        if entry.meta.kind != ArtifactKind::Blocked || entry.meta.scalar_bytes as usize != S::BYTES
        {
            continue;
        }
        let t0 = Instant::now();
        match recblock_store::read_plan_file::<S>(&entry.path) {
            Ok(plan) => {
                let load_time = t0.elapsed();
                metrics.record_stage(Stage::StoreLoad, load_time);
                metrics.store_hits.fetch_add(1, Relaxed);
                metrics.store_bytes_read.fetch_add(plan.bytes as u64, Relaxed);
                metrics.store_load_ns.fetch_add(load_time.as_nanos() as u64, Relaxed);
                let key = plan.meta.key;
                cache.insert(key, Arc::new(plan.into_solver()));
                loaded += 1;
            }
            Err(_) => {
                metrics.record_stage(Stage::StoreLoad, t0.elapsed());
                metrics.store_errors.fetch_add(1, Relaxed);
            }
        }
    }
}

impl<S: Scalar> Drop for SolveService<S> {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    #[test]
    fn single_request_round_trip() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
        let l = generate::random_lower::<f64>(400, 4.0, 80);
        let b: Vec<f64> = (0..400).map(|i| (i as f64 * 0.02).sin()).collect();
        let x = service.submit(&l, b.clone()).unwrap().wait().unwrap();
        assert!(max_rel_diff(&x, &serial_csr(&l, &b).unwrap()) < 1e-10);
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.plan_builds, 1);
    }

    #[test]
    fn bad_rhs_length_is_rejected_up_front() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
        let l = generate::diagonal::<f64>(10, 81);
        let err = service.submit(&l, vec![1.0; 9]).unwrap_err();
        assert_eq!(err, ServeError::BadRequest { expected: 10, actual: 9 });
    }

    #[test]
    fn backpressure_overloaded_instead_of_blocking() {
        // Zero workers: nothing drains, so the bound is hit deterministically.
        let service =
            SolveService::<f64>::new(ServeConfig::default().with_workers(0).with_queue_capacity(2));
        let l = generate::diagonal::<f64>(8, 82);
        let _h1 = service.try_submit(&l, vec![1.0; 8]).unwrap();
        let _h2 = service.try_submit(&l, vec![2.0; 8]).unwrap();
        let err = service.try_submit(&l, vec![3.0; 8]).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { depth: 2, capacity: 2 }));
        let stats = service.metrics();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queue_depth, 2);
    }

    #[test]
    fn zero_worker_shutdown_cancels_pending() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(0));
        let l = generate::diagonal::<f64>(8, 83);
        let h = service.try_submit(&l, vec![1.0; 8]).unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(h.wait().unwrap_err(), ServeError::ShuttingDown);
    }

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let p = std::env::temp_dir().join(format!("rbserve-{}-{}", std::process::id(), name));
            std::fs::remove_dir_all(&p).ok();
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn warm_status_reports_built_then_cache() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
        let l = generate::random_lower::<f64>(200, 3.0, 85);
        assert_eq!(service.warm_status(&l).unwrap(), PlanSource::Built);
        assert_eq!(service.warm_status(&l).unwrap(), PlanSource::Cache);
    }

    #[test]
    fn store_tier_persists_and_reloads_across_services() {
        let tmp = TempDir::new("tier");
        let l = generate::random_lower::<f64>(500, 4.0, 86);
        let b: Vec<f64> = (0..500).map(|i| (i as f64 * 0.02).cos()).collect();

        // First service builds the plan and writes it back.
        let first =
            SolveService::<f64>::new(ServeConfig::default().with_workers(1).with_store(&tmp.0));
        let x1 = first.submit(&l, b.clone()).unwrap().wait().unwrap();
        first.flush_store();
        let stats = first.shutdown();
        assert_eq!(stats.plan_builds, 1);
        assert_eq!(stats.store_misses, 1);
        assert_eq!(stats.store_writes, 1);

        // A fresh service (empty in-memory cache) loads instead of building.
        let second = SolveService::<f64>::new(
            ServeConfig::default()
                .with_workers(1)
                .with_store_options(StoreOptions::new(&tmp.0).with_warm_start(false)),
        );
        assert_eq!(second.warm_status(&l).unwrap(), PlanSource::Store);
        assert_eq!(second.warm_status(&l).unwrap(), PlanSource::Cache);
        let x2 = second.submit(&l, b.clone()).unwrap().wait().unwrap();
        assert_eq!(x1, x2, "persisted plan must solve bit-identically");
        let stats = second.shutdown();
        assert_eq!(stats.plan_builds, 0, "plan must come from the store, not a rebuild");
        assert_eq!(stats.store_hits, 1);
        assert!(stats.store_bytes_read > 0);
        assert!(stats.preprocess_time_saved > std::time::Duration::ZERO);
    }

    #[test]
    fn warm_start_prepopulates_cache_at_boot() {
        let tmp = TempDir::new("warmstart");
        let l = generate::random_lower::<f64>(400, 3.0, 87);
        let first =
            SolveService::<f64>::new(ServeConfig::default().with_workers(1).with_store(&tmp.0));
        first.warm(&l).unwrap();
        first.flush_store();
        first.shutdown();

        let second =
            SolveService::<f64>::new(ServeConfig::default().with_workers(1).with_store(&tmp.0));
        assert_eq!(second.cached_plans(), 1, "boot warm-start should load the stored plan");
        assert_eq!(second.warm_status(&l).unwrap(), PlanSource::Cache);
        let stats = second.shutdown();
        assert_eq!(stats.plan_builds, 0);
        assert_eq!(stats.store_hits, 1);
    }

    #[test]
    fn corrupt_store_file_falls_back_to_building() {
        let tmp = TempDir::new("corrupt");
        let l = generate::random_lower::<f64>(300, 3.0, 88);
        let first =
            SolveService::<f64>::new(ServeConfig::default().with_workers(1).with_store(&tmp.0));
        first.warm(&l).unwrap();
        first.flush_store();
        first.shutdown();

        // Flip one byte in the middle of the stored plan.
        let store = recblock_store::PlanStore::open(&tmp.0).unwrap();
        let path = store.path_for(&PlanKey::of(&l), recblock_store::ArtifactKind::Blocked);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let second = SolveService::<f64>::new(
            ServeConfig::default()
                .with_workers(1)
                .with_store_options(StoreOptions::new(&tmp.0).with_warm_start(false)),
        );
        // The boot-time recovery scan already quarantined the corrupt file,
        // so the tier misses cleanly and the plan is rebuilt.
        assert_eq!(second.health(), Health::Degraded);
        assert!(store.quarantine_dir().exists(), "corrupt file must be moved aside");
        assert_eq!(second.warm_status(&l).unwrap(), PlanSource::Built);
        let b: Vec<f64> = (0..300).map(|i| ((i % 5) as f64) - 2.0).collect();
        let x = second.submit(&l, b.clone()).unwrap().wait().unwrap();
        assert!(max_rel_diff(&x, &serial_csr(&l, &b).unwrap()) < 1e-10);
        second.flush_store();
        let stats = second.shutdown();
        assert_eq!(stats.store_quarantined, 1, "the corrupt file must be quarantined at boot");
        assert_eq!(stats.plan_builds, 1);
        // The rebuilt plan was written back in place of the corrupt file.
        assert_eq!(stats.store_writes, 1);
        // The miss (post-quarantine) still left a span in the stage
        // histograms: the fallback path is visible, not silently absorbed.
        let store_load = stats.stage(Stage::StoreLoad).expect("failed load must record a span");
        assert!(store_load.count >= 1);
        assert!(store_load.total > std::time::Duration::ZERO);
        // The request itself went through the full pipeline.
        for stage in [Stage::CacheLookup, Stage::QueueWait, Stage::Solve, Stage::Respond] {
            assert!(stats.stage(stage).is_some(), "missing {} span", stage.name());
        }
    }

    #[test]
    fn drain_is_idempotent_then_shutdown_still_returns() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(2));
        let l = generate::random_lower::<f64>(200, 3.0, 90);
        assert_eq!(service.health(), Health::Healthy);
        let x = service.submit(&l, vec![1.0; 200]).unwrap().wait().unwrap();
        assert_eq!(x.len(), 200);

        let first = service.drain();
        assert_eq!(first.completed, 1);
        assert_eq!(first.health, Health::Draining);
        // Second drain finds the handles already taken: returns at once.
        let second = service.drain();
        assert_eq!(second.completed, 1);
        // Post-drain submits are refused with a typed error.
        let err = service.try_submit(&l, vec![1.0; 200]).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        // The consuming shutdown after a drain must not deadlock either.
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn concurrent_drains_do_not_deadlock() {
        let service = Arc::new(SolveService::<f64>::new(ServeConfig::default().with_workers(2)));
        let racers: Vec<_> = (0..4)
            .map(|_| {
                let s = service.clone();
                std::thread::spawn(move || s.drain())
            })
            .collect();
        for r in racers {
            r.join().expect("racing drains all return");
        }
    }

    #[test]
    fn drain_survives_poisoned_locks() {
        // A drainer that panicked while holding either drain-path lock
        // must not wedge the next one: the locks are taken
        // poison-tolerantly, so drain still joins workers and flushes.
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
        for poison in [
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = service.workers.lock().unwrap();
                panic!("injected: die holding the workers lock");
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = service.persister.lock().unwrap();
                panic!("injected: die holding the persister lock");
            })),
        ] {
            assert!(poison.is_err());
        }
        let stats = service.drain();
        assert_eq!(stats.health, Health::Draining);
    }

    #[test]
    fn warm_then_submit_hits_cache() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
        let l = generate::random_lower::<f64>(300, 3.0, 84);
        service.warm(&l).unwrap();
        let x = service.submit(&l, vec![1.0; 300]).unwrap().wait().unwrap();
        assert_eq!(x.len(), 300);
        let stats = service.shutdown();
        assert_eq!(stats.plan_builds, 1);
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.preprocess_time_saved > std::time::Duration::ZERO);
    }
}
