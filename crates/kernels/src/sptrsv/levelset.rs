//! Level-set parallel SpTRSV (the paper's Algorithm 2).
//!
//! Preprocessing finds the level sets once; the solve phase processes levels
//! in order, solving all components of a level in parallel and placing a
//! barrier (here: the end of a rayon parallel region) between levels —
//! exactly the structure of the GPU implementation, where each level is one
//! kernel launch.

use rayon::prelude::*;
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, MatrixError, Scalar};

/// Below this many components a level is solved serially — the rayon
/// fork/join overhead dwarfs the work otherwise (the CPU analogue of the
/// kernel-launch cost the GPU model charges per level).
const PAR_LEVEL_THRESHOLD: usize = 256;

/// A level-scheduled triangular solver: analysis happens once in
/// [`LevelSetSolver::new`], after which [`LevelSetSolver::solve`] may be
/// called for many right-hand sides.
#[derive(Debug, Clone)]
pub struct LevelSetSolver<S> {
    l: Csr<S>,
    levels: LevelSets,
}

impl<S: Scalar> LevelSetSolver<S> {
    /// Analyse `l` (level-set construction; the preprocessing stage of
    /// Algorithm 2).
    pub fn new(l: Csr<S>) -> Result<Self, MatrixError> {
        let levels = LevelSets::analyse(&l)?;
        Ok(LevelSetSolver { l, levels })
    }

    /// Build from an existing level decomposition (used by the blocked
    /// executor, which has already analysed the block during reordering).
    pub fn with_levels(l: Csr<S>, levels: LevelSets) -> Self {
        LevelSetSolver { l, levels }
    }

    /// The analysed level sets.
    pub fn levels(&self) -> &LevelSets {
        &self.levels
    }

    /// The matrix being solved.
    pub fn matrix(&self) -> &Csr<S> {
        &self.l
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv rhs",
                expected: n,
                actual: b.len(),
            });
        }
        let mut x = vec![S::ZERO; n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solve into a caller-provided buffer (avoids the allocation when the
    /// solver runs inside an iteration loop).
    pub fn solve_into(&self, b: &[S], x: &mut [S]) -> Result<(), MatrixError> {
        let n = self.l.nrows();
        if b.len() != n || x.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv buffers",
                expected: n,
                actual: b.len().min(x.len()),
            });
        }
        // SAFETY-free sharing: rows within one level never read each other's
        // x entries (that is the defining property of a level set), so we
        // hand each component a raw view through an index-disjoint write.
        // We express it safely via a per-level gather/scatter instead.
        let l = &self.l;
        for lvl in 0..self.levels.nlevels() {
            let items = self.levels.level_items(lvl);
            if items.len() < PAR_LEVEL_THRESHOLD {
                for &i in items {
                    x[i] = solve_row(l, b, x, i);
                }
            } else {
                let solved: Vec<(usize, S)> =
                    items.par_iter().map(|&i| (i, solve_row(l, b, x, i))).collect();
                for (i, xi) in solved {
                    x[i] = xi;
                }
            }
        }
        Ok(())
    }
}

/// Forward-substitute one row given all its dependencies already solved.
#[inline]
fn solve_row<S: Scalar>(l: &Csr<S>, b: &[S], x: &[S], i: usize) -> S {
    let (cols, vals) = l.row(i);
    let last = cols.len() - 1;
    debug_assert_eq!(cols[last], i, "diagonal must be last in row");
    let mut left_sum = S::ZERO;
    for k in 0..last {
        left_sum += vals[k] * x[cols[k]];
    }
    (b[i] - left_sum) / vals[last]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check_matches_serial(l: Csr<f64>, seed: u64) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37 + seed as f64).sin()).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let solver = LevelSetSolver::new(l).unwrap();
        let x = solver.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-12);
    }

    #[test]
    fn matches_serial_on_random() {
        check_matches_serial(generate::random_lower::<f64>(800, 5.0, 31), 1);
    }

    #[test]
    fn matches_serial_on_grid() {
        check_matches_serial(generate::grid2d::<f64>(30, 25, 32), 2);
    }

    #[test]
    fn matches_serial_on_chain() {
        check_matches_serial(generate::chain::<f64>(300, 33), 3);
    }

    #[test]
    fn matches_serial_on_kkt() {
        check_matches_serial(generate::kkt_like::<f64>(2000, 900, 4, 34), 4);
    }

    #[test]
    fn matches_serial_on_large_parallel_levels() {
        // Levels large enough to trigger the parallel path.
        check_matches_serial(generate::kkt_like::<f64>(5000, 2500, 3, 35), 5);
    }

    #[test]
    fn solve_into_reuses_buffer() {
        let l = generate::banded::<f64>(200, 4, 0.6, 36);
        let b = vec![1.0; 200];
        let solver = LevelSetSolver::new(l).unwrap();
        let mut x = vec![0.0; 200];
        solver.solve_into(&b, &mut x).unwrap();
        assert!(max_rel_diff(&x, &solver.solve(&b).unwrap()) == 0.0);
    }

    #[test]
    fn rejects_bad_rhs() {
        let solver = LevelSetSolver::new(Csr::<f64>::identity(4)).unwrap();
        assert!(solver.solve(&[1.0]).is_err());
    }

    #[test]
    fn rejects_non_triangular_matrix() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1., 1., 1.]).unwrap();
        assert!(LevelSetSolver::new(a).is_err());
    }

    #[test]
    fn exposes_levels() {
        let solver = LevelSetSolver::new(generate::chain::<f64>(10, 37)).unwrap();
        assert_eq!(solver.levels().nlevels(), 10);
        assert_eq!(solver.matrix().nrows(), 10);
    }
}
