//! Property-based bit-identity tests for the execution engine.
//!
//! The engine's contract is stronger than "numerically close": because every
//! kernel — serial reference, level-set schedule, cuSPARSE-like schedule,
//! planned SpMV — reduces each row through the *same* deterministic
//! lane-split reduction, scheduled execution must be **bit-identical** to
//! the serial reference for arbitrary matrices, arbitrary tuning thresholds
//! and both scalar widths. These properties pin that down, including the
//! degenerate shapes (single level, pure chain, empty rows / DCSR).

use proptest::prelude::*;
use recblock_kernels::exec::{ExecPool, ScheduleMode, SpmvPlan, TuneParams};
use recblock_kernels::spmv;
use recblock_kernels::sptrsv::{serial_csr, CusparseLikeSolver, LevelSetSolver};
use recblock_matrix::generate;
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, Dcsr, Scalar};

fn arb_lower() -> impl Strategy<Value = Csr<f64>> {
    (10usize..200, 0u64..400, 5u32..60)
        .prop_map(|(n, seed, deg10)| generate::random_lower::<f64>(n, deg10 as f64 / 10.0, seed))
}

/// Arbitrary engine tuning, spanning everything-fused through
/// everything-parallel with single-row chunks.
fn arb_tune() -> impl Strategy<Value = TuneParams> {
    (1usize..64, 1usize..2048, 1usize..1024).prop_map(|(par_rows, fuse_nnz, chunk_nnz)| {
        TuneParams { par_rows, fuse_nnz, chunk_nnz, ..TuneParams::default() }
    })
}

/// As [`arb_tune`] but forcing the point-to-point task graph and ranging
/// over its own knobs too (task granularity down to one nnz per task).
fn arb_p2p_tune() -> impl Strategy<Value = TuneParams> {
    (arb_tune(), 1usize..512).prop_map(|(tune, p2p_chunk_nnz)| TuneParams {
        schedule_mode: ScheduleMode::PointToPoint,
        p2p_chunk_nnz,
        ..tune
    })
}

/// Solve three times on an explicit multi-thread pool: p2p flags are
/// epoch-stamped, so repeated solves on one plan must stay bit-identical.
fn check_p2p_bitwise<S: Scalar>(l: Csr<S>, tune: TuneParams, rhs_seed: u64) {
    let b = rhs_for::<S>(l.nrows(), rhs_seed);
    let reference = serial_csr(&l, &b).unwrap();
    let levels = LevelSets::analyse(&l).unwrap();
    let pool = ExecPool::new(3);
    let ls = LevelSetSolver::with_tune_threads(l, levels, tune, pool.concurrency());
    assert!(ls.task_stats().is_some(), "p2p mode must compile a task graph");
    let mut x = vec![S::ZERO; b.len()];
    for round in 0..3 {
        x.fill(S::ZERO);
        ls.solve_into_pooled(&b, &mut x, &pool).unwrap();
        assert_eq!(x, reference, "p2p vs serial, round {round}");
    }
}

fn rhs_for<S: Scalar>(n: usize, seed: u64) -> Vec<S> {
    (0..n)
        .map(|i| S::from_f64((((i as u64).wrapping_mul(seed + 7) % 83) as f64) / 41.0 - 1.0))
        .collect()
}

fn to_f32(l: &Csr<f64>) -> Csr<f32> {
    Csr::try_new(
        l.nrows(),
        l.ncols(),
        l.row_ptr().to_vec(),
        l.col_idx().to_vec(),
        l.vals().iter().map(|&v| v as f32).collect(),
    )
    .expect("same structure")
}

fn check_solvers_bitwise<S: Scalar>(l: Csr<S>, tune: TuneParams, rhs_seed: u64) {
    let b = rhs_for::<S>(l.nrows(), rhs_seed);
    let reference = serial_csr(&l, &b).unwrap();
    let levels = LevelSets::analyse(&l).unwrap();

    let ls = LevelSetSolver::with_tune(l.clone(), levels.clone(), tune);
    assert_eq!(ls.solve(&b).unwrap(), reference, "level-set vs serial");

    let cu = CusparseLikeSolver::with_levels_tuned(l, levels, tune).unwrap();
    assert_eq!(cu.solve(&b).unwrap(), reference, "cusparse-like vs serial");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn scheduled_solvers_bit_identical_to_serial_f64(
        l in arb_lower(), tune in arb_tune(), rhs_seed in 0u64..50,
    ) {
        check_solvers_bitwise(l, tune, rhs_seed);
    }

    #[test]
    fn scheduled_solvers_bit_identical_to_serial_f32(
        l in arb_lower(), tune in arb_tune(), rhs_seed in 0u64..50,
    ) {
        check_solvers_bitwise(to_f32(&l), tune, rhs_seed);
    }

    #[test]
    fn p2p_schedule_bit_identical_to_serial_f64(
        l in arb_lower(), tune in arb_p2p_tune(), rhs_seed in 0u64..50,
    ) {
        check_p2p_bitwise(l, tune, rhs_seed);
    }

    #[test]
    fn p2p_schedule_bit_identical_to_serial_f32(
        l in arb_lower(), tune in arb_p2p_tune(), rhs_seed in 0u64..50,
    ) {
        check_p2p_bitwise(to_f32(&l), tune, rhs_seed);
    }

    #[test]
    fn planned_spmv_bit_identical_with_empty_rows(
        nrows in 10usize..150,
        ncols in 10usize..150,
        empty10 in 0u32..10,
        tune in arb_tune(),
        seed in 0u64..300,
    ) {
        // Matrices with empty rows are exactly what DCSR compresses away;
        // the planned kernels must agree bitwise on both storages.
        let a = generate::rect_random::<f64>(
            nrows, ncols, 3.0, empty10 as f64 / 10.0, 1.5, seed,
        );
        let x = rhs_for::<f64>(ncols, seed + 1);
        let pool = ExecPool::global();

        let mut y_ref = rhs_for::<f64>(nrows, seed + 2);
        let mut y_csr = y_ref.clone();
        let mut y_dcsr = y_ref.clone();

        spmv::scalar_csr(&a, &x, &mut y_ref).unwrap();

        let plan = SpmvPlan::for_csr(&a, &tune);
        spmv::csr_update_planned(&a, &plan, &x, &mut y_csr, pool).unwrap();
        prop_assert_eq!(&y_csr, &y_ref);

        let ad = Dcsr::from_csr(&a);
        let dplan = SpmvPlan::for_dcsr(&ad, &tune);
        spmv::dcsr_update_planned(&ad, &dplan, &x, &mut y_dcsr, pool).unwrap();
        prop_assert_eq!(&y_dcsr, &y_ref);
    }
}

#[test]
fn single_level_matrix_bit_identical() {
    // A diagonal system collapses to one level; the schedule must still
    // agree with the serial reference for any tuning.
    for tune in [
        TuneParams::default(),
        TuneParams { par_rows: 1, fuse_nnz: 1, chunk_nnz: 1, ..TuneParams::default() },
    ] {
        check_solvers_bitwise(generate::diagonal::<f64>(500, 920), tune, 3);
    }
}

#[test]
fn chain_matrix_bit_identical() {
    // A pure chain has one row per level — the fully-serial worst case the
    // coarsening pass fuses into a single run.
    let tune = TuneParams { par_rows: 4, fuse_nnz: 16, chunk_nnz: 8, ..TuneParams::default() };
    check_solvers_bitwise(generate::chain::<f64>(800, 921), tune, 5);
}

#[test]
fn p2p_chain_and_single_level_bit_identical() {
    // The degenerate shapes: a diagonal system (one wide level — every task
    // independent) and a pure chain (one row per level — the planner fuses
    // the whole solve into a single task).
    let tune = TuneParams {
        schedule_mode: ScheduleMode::PointToPoint,
        p2p_chunk_nnz: 32,
        ..TuneParams::default()
    };
    check_p2p_bitwise(generate::diagonal::<f64>(500, 930), tune, 7);
    check_p2p_bitwise(generate::chain::<f64>(800, 931), tune, 8);
}

#[test]
fn empty_spmv_plan_is_consistent() {
    let a = Csr::<f64>::zero(8, 8);
    let plan = SpmvPlan::for_csr(&a, &TuneParams::default());
    let x = vec![1.0; 8];
    let mut y = vec![2.0; 8];
    spmv::csr_update_planned(&a, &plan, &x, &mut y, ExecPool::global()).unwrap();
    assert_eq!(y, vec![2.0; 8], "zero matrix must leave y untouched");
}
