//! End-to-end tests for the `recblock-serve` solve service: concurrent
//! clients against one shared matrix must match the serial reference while
//! the plan cache preprocesses exactly once and the batcher coalesces
//! multi-column solves.

use recblock_kernels::sptrsv::serial_csr;
use recblock_matrix::generate;
use recblock_matrix::vector::max_rel_diff;
use recblock_serve::{ServeConfig, ServeError, SolveService};
use std::sync::Barrier;

const N: usize = 2000;
const CLIENTS: usize = 8;
const RHS_PER_CLIENT: usize = 4;

fn rhs_for(client: usize, j: usize) -> Vec<f64> {
    (0..N).map(|i| ((i + 31 * client + 7 * j) as f64 * 0.013).sin() + 1.5).collect()
}

#[test]
fn concurrent_clients_share_one_plan_and_batch() {
    let l = generate::random_lower::<f64>(N, 5.0, 90);
    let service =
        SolveService::<f64>::new(ServeConfig::default().with_workers(1).with_max_batch(8));

    // Reference solutions, computed serially.
    let reference: Vec<Vec<Vec<f64>>> = (0..CLIENTS)
        .map(|c| (0..RHS_PER_CLIENT).map(|j| serial_csr(&l, &rhs_for(c, j)).unwrap()).collect())
        .collect();

    // Bursts of 8 clients × 4 RHS each, until the batcher demonstrably
    // coalesced at least one multi-column solve. One burst against a single
    // worker all but guarantees it; the retry bound keeps the test immune
    // to freak scheduling.
    let mut rounds = 0;
    loop {
        rounds += 1;
        let barrier = Barrier::new(CLIENTS);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let (l, service, barrier) = (&l, &service, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let handles: Vec<_> = (0..RHS_PER_CLIENT)
                            .map(|j| service.submit(l, rhs_for(c, j)).unwrap())
                            .collect();
                        handles.into_iter().map(|h| h.wait().unwrap()).collect::<Vec<Vec<f64>>>()
                    })
                })
                .collect();
            for (c, h) in handles.into_iter().enumerate() {
                for (j, x) in h.join().unwrap().into_iter().enumerate() {
                    assert!(
                        max_rel_diff(&x, &reference[c][j]) < 1e-10,
                        "client {c} rhs {j} diverged from serial reference"
                    );
                }
            }
        });
        let stats = service.metrics();
        if stats.multi_column_batches >= 1 || rounds >= 10 {
            break;
        }
    }

    let stats = service.shutdown();
    assert_eq!(stats.plan_builds, 1, "one shared matrix ⇒ exactly one preprocessing build");
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(
        stats.cache_hits,
        (rounds * CLIENTS * RHS_PER_CLIENT - 1) as u64,
        "every other submit hits the cached plan"
    );
    assert!(stats.multi_column_batches >= 1, "batcher never coalesced columns");
    assert_eq!(stats.completed, (rounds * CLIENTS * RHS_PER_CLIENT) as u64);
    assert_eq!(stats.failed + stats.cancelled + stats.rejected, 0);
    assert!(stats.preprocess_time_saved > std::time::Duration::ZERO);
}

#[test]
fn cache_evicts_under_tiny_capacity_and_rebuilds() {
    let service = SolveService::<f64>::new(
        ServeConfig::default().with_workers(1).with_cache_capacity(2).with_cache_shards(1),
    );
    let mats: Vec<_> =
        (0..3).map(|i| generate::random_lower::<f64>(300 + i, 3.0, 91 + i as u64)).collect();
    for m in &mats {
        service.submit(m, vec![1.0; m.nrows()]).unwrap().wait().unwrap();
    }
    assert_eq!(service.cached_plans(), 2);
    // mats[0] was evicted: resubmitting it rebuilds (4th build overall).
    service.submit(&mats[0], vec![2.0; mats[0].nrows()]).unwrap().wait().unwrap();
    let stats = service.shutdown();
    assert!(stats.cache_evictions >= 1);
    assert_eq!(stats.plan_builds, 4);
}

#[test]
fn backpressure_fails_fast_and_shutdown_drains() {
    // Zero workers: the queue cannot drain, so capacity is hit exactly.
    let service =
        SolveService::<f64>::new(ServeConfig::default().with_workers(0).with_queue_capacity(3));
    let l = generate::diagonal::<f64>(16, 95);
    let handles: Vec<_> = (0..3).map(|_| service.try_submit(&l, vec![1.0; 16]).unwrap()).collect();
    match service.try_submit(&l, vec![1.0; 16]) {
        Err(ServeError::Overloaded { depth: 3, capacity: 3 }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(service.queue_depth(), 3);
    let stats = service.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.cancelled, 3, "zero-worker shutdown cancels the queue");
    for h in handles {
        assert_eq!(h.wait().unwrap_err(), ServeError::ShuttingDown);
    }
}

#[test]
fn graceful_shutdown_completes_accepted_work() {
    let service =
        SolveService::<f64>::new(ServeConfig::default().with_workers(1).with_max_batch(4));
    let l = generate::random_lower::<f64>(800, 4.0, 96);
    let handles: Vec<_> = (0..12)
        .map(|j| {
            let b: Vec<f64> = (0..800).map(|i| ((i * (j + 1)) as f64 * 0.001).cos()).collect();
            service.submit(&l, b).unwrap()
        })
        .collect();
    // Shut down immediately: everything accepted must still be answered.
    let stats = service.shutdown();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.cancelled, 0);
    for h in handles {
        assert_eq!(h.wait().unwrap().len(), 800);
    }
}
