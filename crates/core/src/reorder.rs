//! Recursive level-set reordering (the paper's Section 3.3, Figure 3).
//!
//! Before blocking, the improved algorithm symmetrically permutes the matrix
//! so that components of the same level set sit together: the whole matrix
//! is reordered by its level-set order, then each triangular half is
//! recursively reordered by *its own* level sets. Level order is a
//! topological order of the dependency DAG, so every intermediate matrix
//! stays lower triangular; the effect (Figure 3(b)→(c)) is that more
//! nonzeros land in the square blocks, where SpMV parallelism is free, and
//! many leaf triangles collapse to pure diagonals.

use recblock_matrix::levelset::{LevelSets, WithinLevelOrder};
use recblock_matrix::permute::{permute_symmetric, Permutation};
use recblock_matrix::{Csr, MatrixError, Scalar};

/// Compute the recursive level-set permutation of a solvable
/// lower-triangular matrix down to `depth` bisection levels, and the
/// reordered matrix itself. `perm[new] = old`; the reordered matrix is
/// `P L Pᵀ` and stays solvable lower triangular.
pub fn recursive_levelset_reorder<S: Scalar>(
    l: &Csr<S>,
    depth: usize,
) -> Result<(Csr<S>, Permutation), MatrixError> {
    recursive_levelset_reorder_ordered(l, depth, WithinLevelOrder::ByIndex)
}

/// As [`recursive_levelset_reorder`], with an explicit within-level order
/// (Section 3.3 notes that components with more nonzeros tend to move
/// backwards under level sorting; `ShortRowsFirst` makes that explicit).
pub fn recursive_levelset_reorder_ordered<S: Scalar>(
    l: &Csr<S>,
    depth: usize,
    order: WithinLevelOrder,
) -> Result<(Csr<S>, Permutation), MatrixError> {
    recblock_matrix::triangular::check_solvable_lower(l)?;
    let perm = reorder_rec(l, depth, order);
    let reordered = permute_symmetric(l, &perm)?;
    debug_assert!(reordered.is_solvable_lower());
    Ok((reordered, perm))
}

/// Recursive worker: returns the local permutation for a (sub-)matrix.
fn reorder_rec<S: Scalar>(sub: &Csr<S>, depth: usize, order: WithinLevelOrder) -> Permutation {
    let n = sub.nrows();
    if n < 2 {
        return Permutation::identity(n);
    }
    let levels = LevelSets::analyse_unchecked(sub);
    let p0 = levels.permutation_ordered(sub, order);
    if depth == 0 {
        return p0;
    }
    let b = permute_symmetric(sub, &p0).expect("level order preserves triangularity");
    let mid = n / 2;
    let top = b.submatrix(0..mid, 0..mid);
    let bottom = b.submatrix(mid..n, mid..n);
    let pt = reorder_rec(&top, depth - 1, order);
    let pb = reorder_rec(&bottom, depth - 1, order);
    p0.then_local(0, &pt).then_local(mid, &pb)
}

/// Count nonzeros that fall in the square (off-diagonal-block) parts of a
/// recursive bisection at `depth` — the quantity Figure 3 shows the
/// reordering increases ("the number of nonzeros in the square part ... is
/// higher than ... the same area of" the unordered matrix).
pub fn square_part_nnz<S: Scalar>(l: &Csr<S>, depth: usize) -> usize {
    let plan = crate::partition::recursive_plan(l.nrows(), depth);
    let mut count = 0usize;
    for node in &plan {
        if let crate::partition::PlanNode::Square { rows, cols } = node {
            count += l.submatrix(rows.clone(), cols.clone()).nnz();
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    #[test]
    fn reordered_matrix_stays_solvable() {
        let l = generate::random_lower::<f64>(500, 4.0, 41);
        let (r, p) = recursive_levelset_reorder(&l, 3).unwrap();
        assert!(r.is_solvable_lower());
        assert_eq!(r.nnz(), l.nnz());
        assert_eq!(p.len(), 500);
    }

    #[test]
    fn solve_through_permutation_matches() {
        // Solve P L Pᵀ y = P b, then x = Pᵀ y must solve L x = b.
        let l = generate::grid2d::<f64>(20, 20, 42);
        let b: Vec<f64> = (0..400).map(|i| ((i % 7) as f64) - 3.0).collect();
        let (r, p) = recursive_levelset_reorder(&l, 2).unwrap();
        let bp = p.gather(&b);
        let y = serial_csr(&r, &bp).unwrap();
        let x = p.scatter(&y);
        let reference = serial_csr(&l, &b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-12);
    }

    #[test]
    fn depth_zero_is_plain_levelset_order() {
        let l = generate::random_lower::<f64>(200, 3.0, 43);
        let (_, p) = recursive_levelset_reorder(&l, 0).unwrap();
        let ls = LevelSets::analyse(&l).unwrap();
        assert_eq!(p.forward(), ls.permutation().forward());
    }

    #[test]
    fn reordering_moves_nonzeros_into_squares() {
        // The paper's Figure 3 claim, checked statistically: level-set
        // reordering should not decrease (and typically increases) the
        // square-part nonzero count.
        let mut improved = 0usize;
        let mut total = 0usize;
        for seed in 0..8u64 {
            let l =
                generate::layered::<f64>(512, 12, 2.0, generate::LayerShape::Uniform, 100 + seed);
            let before = square_part_nnz(&l, 3);
            let (r, _) = recursive_levelset_reorder(&l, 3).unwrap();
            let after = square_part_nnz(&r, 3);
            total += 1;
            if after >= before {
                improved += 1;
            }
        }
        assert!(improved * 2 > total, "reordering helped only {improved}/{total}");
    }

    #[test]
    fn diagonal_matrix_identity_reorder() {
        let l = generate::diagonal::<f64>(64, 44);
        let (r, _) = recursive_levelset_reorder(&l, 2).unwrap();
        // A diagonal matrix is invariant under any stable level reorder.
        assert_eq!(r.nnz(), 64);
        assert!(r.is_solvable_lower());
    }

    #[test]
    fn leaf_triangles_simplify_after_reorder() {
        // After level-set reordering, the first leaf of a two-level matrix
        // should be (near-)diagonal: level 0 components come first.
        let l = generate::kkt_like::<f64>(1024, 400, 3, 45);
        let (r, _) = recursive_levelset_reorder(&l, 1).unwrap();
        let top = r.submatrix(0..512, 0..512);
        let levels = LevelSets::analyse_unchecked(&top);
        // Top leaf is mostly level-0 rows: far fewer levels than the 2 of
        // the full matrix would force on an unordered split.
        assert!(levels.nlevels() <= 2);
        let diag_rows = (0..512).filter(|&i| top.row(i).0 == [i]).count();
        assert!(diag_rows >= 400, "only {diag_rows} diagonal rows in top leaf");
    }

    #[test]
    fn rejects_non_triangular() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1., 1., 1.]).unwrap();
        assert!(recursive_levelset_reorder(&a, 1).is_err());
    }
}
