//! Analytic kernel cost formulas.
//!
//! Every formula decomposes a kernel's runtime into three components that
//! are reported separately in [`KernelTime`]:
//!
//! * **launch** — fixed host-side kernel launch overhead (`launch_us` per
//!   launch). Level-set methods pay it per level; cuSPARSE merges runs of
//!   small levels per Naumov's scheme; sync-free and the per-block kernels
//!   pay it once.
//! * **latency** — the dependent/critical-path portion that utilisation
//!   cannot hide: per-level dependency latency, a single warp walking a long
//!   row 32 elements at a time, serialized atomic updates to one hot
//!   address.
//! * **memory** — streaming traffic at `bandwidth × utilisation`, with the
//!   random `x`-vector accesses charged a full sector when the working set
//!   exceeds L2 and a multiplied bandwidth when it fits (the data-locality
//!   effect Section 2.2 of the paper builds the whole block approach on).
//!
//! Constants were calibrated once against the absolute numbers the paper
//! reports in its Tables 4–5 (e.g. `tmt_sym` ≈ 0.4–0.7 s/solve for the
//! level-scheduled methods; `FullChip` sync-free dominated by ~40 ms of
//! serialized atomics; `nlpkkt200` bandwidth-bound at ~10 ms) and are *not*
//! tuned per experiment.

use crate::device::DeviceSpec;
use crate::profile::{SpmvProfile, TriProfile};

/// Tunable constants of the cost model. `Default` gives the calibrated
/// values used throughout the suite.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Host-side kernel launch overhead (µs).
    pub launch_us: f64,
    /// Per-level dependency latency inside a level-scheduled kernel (µs):
    /// the round trip of the slowest row's last dependency through global
    /// memory.
    pub level_latency_us: f64,
    /// Per-level latency of the sync-free dataflow (µs) when the flag and
    /// `left_sum` traffic go through DRAM: atomic notification plus
    /// busy-wait detection. Scaled down by cache residency at price time —
    /// an L2-resident block's notifications round-trip through L2 instead
    /// (the asymmetry that makes sync-free excellent *inside* small blocks
    /// and poor on whole many-level matrices, matching the paper's tmt_sym
    /// row).
    pub dep_latency_us: f64,
    /// Time for one warp to process one 32-element chunk of a row (ns).
    pub warp_chunk_ns: f64,
    /// Warp-level reduction at the end of a vector-kernel row (ns).
    pub warp_reduce_ns: f64,
    /// Per-element cost of a single thread walking a row serially (ns).
    pub thread_elem_ns: f64,
    /// Per-scheduled-unit overhead (thread bookkeeping, pointer reads) (ns).
    pub sched_ns: f64,
    /// Serialized `atomicAdd` to one address (ns) — the sync-free killer on
    /// rows with enormous in-degree.
    pub atomic_serial_ns: f64,
    /// Bytes charged per random vector access when the working set does not
    /// fit in L2 (a DRAM sector).
    pub sector_bytes: f64,
    /// Bandwidth multiplier for vector traffic when the working set fits L2.
    pub l2_bw_mult: f64,
    /// Bytes per column/row index (CUDA `int`).
    pub idx_bytes: f64,
    /// Bytes per pointer-array entry.
    pub ptr_bytes: f64,
    /// Extra per-row metadata bytes the cuSPARSE solve phase reads.
    pub cusparse_row_meta_bytes: f64,
    /// cuSPARSE analysis phase: per-nonzero cost (ns).
    pub cusparse_analysis_ns_per_nnz: f64,
    /// cuSPARSE analysis phase: per-level cost (µs).
    pub cusparse_analysis_us_per_level: f64,
    /// Sync-free preprocessing (one atomic increment per nonzero, massively
    /// parallel): amortised per-nonzero cost (ns).
    pub syncfree_prep_ns_per_nnz: f64,
    /// Block-algorithm preprocessing (reorder + rebuild): per-nonzero (ns).
    pub block_prep_ns_per_nnz: f64,
    /// Fraction of peak streaming efficiency the cuSPARSE solve achieves
    /// (its general-purpose format handling and per-row metadata cost it
    /// bandwidth relative to the lean purpose-built kernels).
    pub cusparse_bw_derate: f64,
    /// Row length at which the scalar (thread-per-row) kernels start losing
    /// coalescing: adjacent threads stride apart by the row length, so
    /// matrix traffic inflates by `clamp(avg_row / this, 1, coalesce_cap)`.
    pub scalar_coalesce_row: f64,
    /// Cap on the scalar coalescing penalty.
    pub scalar_coalesce_cap: f64,
    /// Uncoalesced per-row pointer read charged to warp-per-row kernels
    /// (bytes per scheduled unit).
    pub vector_row_ptr_bytes: f64,
    /// Achievable DRAM bandwidth per resident warp (GB/s): effective
    /// bandwidth is `min(peak, warps × this)`, which makes low-occupancy
    /// kernels latency-bound at a device-independent per-warp rate instead
    /// of a fraction of peak (a fraction would wrongly make bigger devices
    /// slower at equal warp counts).
    pub per_warp_bw_gbs: f64,
    /// Device-wide throughput of L2 atomic operations (billions/s) — the
    /// cap on the sync-free kernel's unordered scatter of `left_sum`
    /// updates. The blocked algorithm's SpMV uses plain parallel sums and
    /// never hits it (the asymmetry the paper calls out for FullChip).
    pub atomic_gops: f64,
    /// Structural scale factor applied to every profile before pricing.
    /// The benchmark harness generates matrices 1/50th the paper's size for
    /// tractability and sets this to 50 so the model prices the *full-scale*
    /// structures — keeping the ratio of fixed costs (launches, per-level
    /// latencies) to data costs faithful to the paper's regime.
    pub data_scale: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            launch_us: 4.0,
            level_latency_us: 0.35,
            dep_latency_us: 4.0,
            warp_chunk_ns: 250.0,
            warp_reduce_ns: 60.0,
            thread_elem_ns: 25.0,
            sched_ns: 25.0,
            atomic_serial_ns: 80.0,
            sector_bytes: 64.0,
            l2_bw_mult: 3.0,
            idx_bytes: 4.0,
            ptr_bytes: 4.0,
            cusparse_row_meta_bytes: 8.0,
            cusparse_analysis_ns_per_nnz: 3.0,
            cusparse_analysis_us_per_level: 0.3,
            syncfree_prep_ns_per_nnz: 0.08,
            block_prep_ns_per_nnz: 3.5,
            cusparse_bw_derate: 0.55,
            scalar_coalesce_row: 12.0,
            scalar_coalesce_cap: 8.0,
            vector_row_ptr_bytes: 32.0,
            per_warp_bw_gbs: 0.4,
            atomic_gops: 10.0,
            data_scale: 1.0,
        }
    }
}

/// A kernel time decomposed into its model components (all in seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelTime {
    /// Total predicted time.
    pub total_s: f64,
    /// Kernel-launch component.
    pub launch_s: f64,
    /// Critical-path / latency component.
    pub latency_s: f64,
    /// Memory-throughput component.
    pub memory_s: f64,
    /// Number of kernel launches charged.
    pub launches: usize,
}

impl KernelTime {
    fn assemble(launches: usize, latency_s: f64, memory_s: f64, p: &CostParams) -> Self {
        let launch_s = launches as f64 * p.launch_us * 1e-6;
        KernelTime {
            total_s: launch_s + latency_s + memory_s,
            launch_s,
            latency_s,
            memory_s,
            launches,
        }
    }

    /// Time excluding launch overhead — the right quantity for *comparing*
    /// kernels that would all pay the same launch (the Figure 5 selection
    /// sweep).
    pub fn work_s(&self) -> f64 {
        self.total_s - self.launch_s
    }

    /// Sum two kernel times (sequential composition).
    pub fn seq(self, other: KernelTime) -> KernelTime {
        KernelTime {
            total_s: self.total_s + other.total_s,
            launch_s: self.launch_s + other.launch_s,
            latency_s: self.latency_s + other.latency_s,
            memory_s: self.memory_s + other.memory_s,
            launches: self.launches + other.launches,
        }
    }
}

/// `true` if a working set of `bytes` fits the device's L2 — the fully
/// cached regime of the vector-access model.
pub fn fits_l2(bytes: usize, dev: &DeviceSpec) -> bool {
    bytes <= dev.l2_cache_bytes
}

/// Cache hit rate of random vector accesses over a working set of `bytes`:
/// 1 when the set fits L2, decaying as `l2 / working_set` beyond it. This is
/// the continuous form of the paper's locality argument — smaller blocks →
/// hotter `x`/`b` segments.
pub fn locality(working_set_bytes: usize, dev: &DeviceSpec) -> f64 {
    if working_set_bytes == 0 {
        return 1.0;
    }
    (dev.l2_cache_bytes as f64 / working_set_bytes as f64).min(1.0)
}

/// Memory time for `matrix_bytes` of streamed traffic plus `vector_bytes`
/// of (random) vector traffic, at utilisation `util` and vector-access hit
/// rate `hit`.
fn mem_time(
    matrix_bytes: f64,
    vector_bytes: f64,
    hit: f64,
    util: f64,
    dev: &DeviceSpec,
    p: &CostParams,
) -> f64 {
    // Effective bandwidth scales with resident warps at a device-independent
    // per-warp rate, clamped to peak; a floor of 32 warps keeps tiny kernels
    // latency-bound (their latency is charged by the explicit terms).
    let warps = (util * dev.max_resident_warps() as f64).max(32.0);
    let bw = (warps * p.per_warp_bw_gbs * 1e9).min(dev.bandwidth_bytes_per_sec());
    // Hits are served at a multiplied bandwidth; the blend interpolates.
    let vec_bw = bw * (1.0 + (p.l2_bw_mult - 1.0) * hit);
    matrix_bytes / bw + vector_bytes / vec_bw
}

/// Bytes of random `x` accesses for `loads` scattered reads at hit rate
/// `hit`: hits cost one element, misses cost a DRAM sector.
fn x_bytes(loads: f64, sb: f64, hit: f64, p: &CostParams) -> f64 {
    loads * (sb * hit + p.sector_bytes * (1.0 - hit))
}

/// One level of a level-scheduled solve (shared by the level-set and
/// cuSPARSE formulas): latency + memory.
#[allow(clippy::too_many_arguments)] // tight internal helper, call sites are adjacent
fn level_time(
    rows: usize,
    nnz: usize,
    max_row: usize,
    sb: f64,
    hit: f64,
    extra_row_bytes: f64,
    dev: &DeviceSpec,
    p: &CostParams,
) -> (f64, f64) {
    let util = dev.utilisation(rows);
    let matrix_bytes = nnz as f64 * (p.idx_bytes + sb)
        + rows as f64 * (2.0 * p.ptr_bytes + 2.0 * sb + extra_row_bytes);
    let loads = (nnz - rows) as f64; // off-diagonal x reads
    let mem = mem_time(matrix_bytes, x_bytes(loads, sb, hit, p), hit, util, dev, p);
    let chunks = (max_row as f64 / dev.warp_size as f64).ceil();
    let lat = p.level_latency_us * 1e-6 + chunks * p.warp_chunk_ns * 1e-9 + p.warp_reduce_ns * 1e-9;
    (lat, mem)
}

/// Level-set SpTRSV: one kernel launch **per level** (Algorithm 2's barrier
/// between levels is a kernel boundary on the GPU).
pub fn sptrsv_levelset(
    t: &TriProfile,
    scalar_bytes: usize,
    working_set: usize,
    dev: &DeviceSpec,
    p: &CostParams,
) -> KernelTime {
    let t = &t.scaled(p.data_scale);
    let hit = locality(working_set, dev);
    let sb = scalar_bytes as f64;
    let mut lat = 0.0;
    let mut mem = 0.0;
    for l in 0..t.nlevels() {
        let (a, b) =
            level_time(t.level_rows[l], t.level_nnz[l], t.level_max_row[l], sb, hit, 0.0, dev, p);
        lat += a;
        mem += b;
    }
    KernelTime::assemble(t.nlevels(), lat, mem, p)
}

/// cuSPARSE merges runs of consecutive levels whose size is at most this
/// into one launch (mirrors `CusparseLikeSolver`'s schedule).
pub const CUSPARSE_MERGE_THRESHOLD: usize = 32;

/// Number of launches the cuSPARSE-like merged schedule needs.
pub fn cusparse_launches(level_rows: &[usize]) -> usize {
    cusparse_launches_with_threshold(level_rows, CUSPARSE_MERGE_THRESHOLD)
}

/// Launch count with an explicit merge threshold (the threshold scales with
/// `CostParams::data_scale`, since a profile scaled `f×` wider must merge
/// exactly where its unscaled original would).
pub fn cusparse_launches_with_threshold(level_rows: &[usize], threshold: usize) -> usize {
    let mut launches = 0usize;
    let mut in_merged_run = false;
    for &rows in level_rows {
        if rows > threshold {
            launches += 1;
            in_merged_run = false;
        } else if !in_merged_run {
            launches += 1;
            in_merged_run = true;
        }
    }
    launches
}

/// cuSPARSE-v2-style solve: merged launches, extra per-row metadata traffic,
/// derated streaming efficiency.
pub fn sptrsv_cusparse(
    t: &TriProfile,
    scalar_bytes: usize,
    working_set: usize,
    dev: &DeviceSpec,
    p: &CostParams,
) -> KernelTime {
    let t = &t.scaled(p.data_scale);
    let hit = locality(working_set, dev);
    let sb = scalar_bytes as f64;
    let mut lat = 0.0;
    let mut mem = 0.0;
    for l in 0..t.nlevels() {
        let (a, b) = level_time(
            t.level_rows[l],
            t.level_nnz[l],
            t.level_max_row[l],
            sb,
            hit,
            p.cusparse_row_meta_bytes,
            dev,
            p,
        );
        lat += a;
        mem += b;
    }
    let merge_threshold = (CUSPARSE_MERGE_THRESHOLD as f64 * p.data_scale).round() as usize;
    KernelTime::assemble(
        cusparse_launches_with_threshold(&t.level_rows, merge_threshold),
        lat,
        mem / p.cusparse_bw_derate,
        p,
    )
}

/// cuSPARSE analysis phase (the expensive preprocessing of Table 5).
pub fn cusparse_analysis_time(t: &TriProfile, p: &CostParams) -> f64 {
    t.nnz as f64 * p.data_scale * p.cusparse_analysis_ns_per_nnz * 1e-9
        + t.nlevels() as f64 * p.cusparse_analysis_us_per_level * 1e-6
}

/// Sync-free SpTRSV: one launch; critical path of per-level atomic
/// dependencies plus the serialized-atomics tail of the hottest row; memory
/// traffic inflated by the `left_sum` read-modify-write per nonzero.
pub fn sptrsv_syncfree(
    t: &TriProfile,
    scalar_bytes: usize,
    working_set: usize,
    dev: &DeviceSpec,
    p: &CostParams,
) -> KernelTime {
    let t = &t.scaled(p.data_scale);
    let hit = locality(working_set, dev);
    let sb = scalar_bytes as f64;
    let mut crit = 0.0;
    let mut max_row_overall = 0usize;
    // Dependency notifications round-trip through L2 when the working set
    // is resident, through DRAM otherwise.
    let dep_s = p.dep_latency_us * 1e-6 * (1.0 - 0.72 * hit);
    for l in 0..t.nlevels() {
        let fanout_chunks = (t.level_max_col[l] as f64 / dev.warp_size as f64).ceil();
        crit += dep_s + fanout_chunks * p.warp_chunk_ns * 1e-9;
        max_row_overall = max_row_overall.max(t.level_max_row[l]);
    }
    // Serialized atomicAdds into the left_sum of the hottest row (its
    // in-degree is its row length): the FullChip/vas_stokes pathology.
    let serial = max_row_overall as f64 * p.atomic_serial_ns * 1e-9;
    let util = dev.utilisation(t.n);
    let off = (t.nnz - t.n) as f64;
    let matrix_bytes =
        t.nnz as f64 * (p.idx_bytes + sb) + t.n as f64 * (2.0 * p.ptr_bytes + 3.0 * sb);
    // The column-driven dataflow scatters atomic `left_sum` updates across
    // the whole vector: each update is a potential L2 miss (one sector fill,
    // write-back amortised). This is exactly the traffic the row-driven
    // level-scheduled kernels avoid by accumulating left_sum in registers.
    let scatter_bytes = x_bytes(off, sb, hit, p);
    let mem = mem_time(matrix_bytes, scatter_bytes, hit, util, dev, p);
    // Unordered atomics are throughput-capped; L2-resident targets sustain
    // several times the DRAM-resident rate.
    let atomic_s = off / (p.atomic_gops * 1e9 * (1.0 + 3.0 * hit));
    // Latency chain, memory and atomic throughput overlap: whichever
    // dominates, plus the serialized tail which overlaps with neither.
    let lat_mem = crit.max(mem).max(atomic_s) + serial;
    // Attribute for reporting: keep crit in latency, mem in memory, but the
    // total uses the overlapped combination.
    let launch_s = p.launch_us * 1e-6;
    KernelTime {
        total_s: launch_s + lat_mem,
        launch_s,
        latency_s: crit + serial,
        memory_s: mem,
        launches: 1,
    }
}

/// Sync-free preprocessing (one atomic increment per nonzero, fully
/// parallel — cheap, as in Table 5).
pub fn syncfree_prep_time(t: &TriProfile, p: &CostParams) -> f64 {
    t.nnz as f64 * p.data_scale * p.syncfree_prep_ns_per_nnz * 1e-9 + p.launch_us * 1e-6
}

/// Block-algorithm preprocessing: level-set reorder + blocked rebuild of the
/// whole matrix (the "moderate cost" of Table 5, ~9× one solve).
pub fn block_prep_time(nnz: usize, p: &CostParams) -> f64 {
    nnz as f64 * p.data_scale * p.block_prep_ns_per_nnz * 1e-9
}

/// The completely-parallel (diagonal) solve: `x = b ./ d` in one launch.
pub fn sptrsv_diag(
    n: usize,
    scalar_bytes: usize,
    working_set: usize,
    dev: &DeviceSpec,
    p: &CostParams,
) -> KernelTime {
    let n = (n as f64 * p.data_scale).round() as usize;
    let hit = locality(working_set, dev);
    let sb = scalar_bytes as f64;
    let util = dev.utilisation(n / dev.warp_size + 1);
    let mem = mem_time(n as f64 * 3.0 * sb, 0.0, hit, util, dev, p);
    KernelTime::assemble(1, p.level_latency_us * 1e-6, mem, p)
}

/// Which SpMV kernel to price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpmvKind {
    /// One thread per CSR row.
    ScalarCsr,
    /// One warp per CSR row.
    VectorCsr,
    /// One thread per DCSR lane.
    ScalarDcsr,
    /// One warp per DCSR lane.
    VectorDcsr,
}

impl SpmvKind {
    /// All four kinds, for sweeps.
    pub const ALL: [SpmvKind; 4] =
        [SpmvKind::ScalarCsr, SpmvKind::VectorCsr, SpmvKind::ScalarDcsr, SpmvKind::VectorDcsr];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SpmvKind::ScalarCsr => "scalar-CSR",
            SpmvKind::VectorCsr => "vector-CSR",
            SpmvKind::ScalarDcsr => "scalar-DCSR",
            SpmvKind::VectorDcsr => "vector-DCSR",
        }
    }
}

/// SpMV (`y ← y − A·x`) cost for one of the four kernels.
pub fn spmv(
    kind: SpmvKind,
    s: &SpmvProfile,
    scalar_bytes: usize,
    working_set: usize,
    dev: &DeviceSpec,
    p: &CostParams,
) -> KernelTime {
    let s = &s.scaled(p.data_scale);
    let hit = locality(working_set, dev);
    let sb = scalar_bytes as f64;
    let nnz = s.nnz as f64;
    let lanes = s.lanes as f64;
    let dcsr = matches!(kind, SpmvKind::ScalarDcsr | SpmvKind::VectorDcsr);
    let vector = matches!(kind, SpmvKind::VectorCsr | SpmvKind::VectorDcsr);
    // Scheduled units: every row for CSR, only non-empty lanes for DCSR.
    let units = if dcsr { s.lanes } else { s.nrows } as f64;
    // Pointer traffic: CSR reads nrows+1 pointers; DCSR reads lanes pointers
    // plus the row-id indirection array.
    let ptr_bytes =
        if dcsr { lanes * (p.ptr_bytes + p.idx_bytes) } else { s.nrows as f64 * p.ptr_bytes };
    let avg_lane = if s.lanes == 0 { 0.0 } else { nnz / lanes };
    let mut matrix_bytes = nnz * (p.idx_bytes + sb) + ptr_bytes + lanes * 2.0 * sb;
    if !vector {
        // Thread-per-row kernels lose coalescing as rows grow: adjacent
        // threads stride apart by the row length.
        let penalty = (avg_lane / p.scalar_coalesce_row).clamp(1.0, p.scalar_coalesce_cap);
        matrix_bytes *= penalty;
    } else {
        // Warp-per-row kernels issue an uncoalesced pointer read per unit.
        matrix_bytes += units * p.vector_row_ptr_bytes;
    }
    // Random-gather bound (a potential miss per access) versus streaming
    // bound (each line of the x footprint fetched once, later accesses hit
    // L2): the blocked layout sweeps rows in sorted order, so the smaller
    // of the two applies.
    let gather = x_bytes(nnz, sb, hit, p);
    let streaming = s.ncols as f64 * p.sector_bytes + nnz * sb;
    let xb = gather.min(streaming);

    let (work_ns, conc, tail_ns) = if vector {
        // Warp per unit: chunked traversal + reduction; empty CSR rows still
        // burn a quarter-chunk of warp time each.
        let chunks = nnz / dev.warp_size as f64 + lanes * 0.5 + (units - lanes) * 0.25;
        let per_unit = p.warp_reduce_ns + p.sched_ns;
        let tail = (s.max_row as f64 / dev.warp_size as f64).ceil() * p.warp_chunk_ns;
        (chunks * p.warp_chunk_ns + units * per_unit, dev.max_resident_warps() as f64, tail)
    } else {
        // Thread per unit: serial row walk; the longest row's thread is the
        // scalar kernel's load-imbalance tail.
        let tail = s.max_row as f64 * p.thread_elem_ns;
        (
            nnz * p.thread_elem_ns + units * p.sched_ns,
            (dev.max_resident_warps() * dev.warp_size) as f64,
            tail,
        )
    };
    let lat = ((work_ns / units.clamp(1.0, conc)).max(tail_ns)) * 1e-9;
    // Both scheduling flavours expose about the same memory-level
    // parallelism per row task; differences are carried by the coalescing,
    // waste and latency terms above.
    let util = dev.utilisation(units as usize);
    let mem = mem_time(matrix_bytes, xb, hit, util, dev, p);
    // Latency and throughput overlap across rows.
    KernelTime::assemble(1, 0.0, lat.max(mem), p).with_latency_split(lat, mem)
}

impl KernelTime {
    /// Re-attribute an overlapped `max(lat, mem)` total into its components
    /// for reporting (total is preserved).
    fn with_latency_split(mut self, lat: f64, mem: f64) -> Self {
        self.latency_s = lat;
        self.memory_s = mem;
        self.total_s = self.launch_s + lat.max(mem);
        self
    }
}

/// GFlops of an SpTRSV/SpMV over `nnz` entries taking `seconds` (the paper's
/// reporting metric: 2 flops per nonzero).
pub fn gflops(nnz: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    2.0 * nnz as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::titan_rtx_turing()
    }

    fn p() -> CostParams {
        CostParams::default()
    }

    /// Working set far beyond L2 (cold vector accesses).
    const WS_COLD: usize = 1 << 28;
    /// Working set well inside L2 (hot vector accesses).
    const WS_HOT: usize = 1 << 20;

    /// tmt_sym-like profile: 726k levels of one short row each.
    fn tmt_like() -> TriProfile {
        let nl = 726_235usize;
        TriProfile::from_levels(vec![1; nl], vec![4; nl], vec![4; nl], vec![4; nl])
    }

    /// nlpkkt200-like: 2 huge levels, 14 nnz/row.
    fn nlpkkt_like() -> TriProfile {
        TriProfile::from_levels(
            vec![8_120_000, 8_120_000],
            vec![8_120_000, 224_112_816],
            vec![1, 28],
            vec![28, 1],
        )
    }

    /// FullChip-like: 324 levels, one row with enormous in-degree.
    fn fullchip_like() -> TriProfile {
        let nl = 324;
        let mut rows = vec![9_000usize; nl];
        rows[0] = 500_000;
        let mut nnz = vec![45_000usize; nl];
        nnz[0] = 500_000;
        let mut max_row = vec![30usize; nl];
        max_row[1] = 500_000; // the hot accumulator row
        let mut max_col = vec![50usize; nl];
        max_col[0] = 468_405;
        TriProfile::from_levels(rows, nnz, max_row, max_col)
    }

    #[test]
    fn tmt_levelset_is_launch_bound() {
        let t = sptrsv_levelset(&tmt_like(), 8, WS_COLD, &dev(), &p());
        // 726k launches at 4µs = ~2.9s dominated by launches.
        assert!(t.launch_s > 2.0);
        assert!(t.launch_s / t.total_s > 0.8);
    }

    #[test]
    fn tmt_cusparse_merges_launches() {
        let t = sptrsv_cusparse(&tmt_like(), 8, WS_COLD, &dev(), &p());
        assert_eq!(t.launches, 1);
        // Dominated by per-level latency: in the 0.2–1 s range like the
        // paper's 0.014 GFlops (≈ 0.41 s).
        assert!(t.total_s > 0.2 && t.total_s < 1.0, "total {}", t.total_s);
    }

    #[test]
    fn tmt_syncfree_slower_than_cusparse() {
        let c = sptrsv_cusparse(&tmt_like(), 8, WS_COLD, &dev(), &p());
        let s = sptrsv_syncfree(&tmt_like(), 8, WS_COLD, &dev(), &p());
        assert!(s.total_s > c.total_s, "syncfree {} vs cusparse {}", s.total_s, c.total_s);
    }

    #[test]
    fn nlpkkt_syncfree_beats_cusparse() {
        // High parallelism: sync-free avoids launches and wins (paper:
        // 18.09 vs 13.26 GFlops).
        let c = sptrsv_cusparse(&nlpkkt_like(), 8, WS_COLD, &dev(), &p());
        let s = sptrsv_syncfree(&nlpkkt_like(), 8, WS_COLD, &dev(), &p());
        assert!(s.total_s < c.total_s, "syncfree {} vs cusparse {}", s.total_s, c.total_s);
        // Both in the 10–60 ms ballpark of the paper.
        assert!(c.total_s > 0.01 && c.total_s < 0.08, "cusparse {}", c.total_s);
    }

    #[test]
    fn fullchip_syncfree_hits_atomic_serialization() {
        let s = sptrsv_syncfree(&fullchip_like(), 8, WS_COLD, &dev(), &p());
        // ~500k × 80ns = 40ms serialized tail dominates (paper: 0.70 GFlops
        // ≈ 42 ms).
        assert!(s.total_s > 0.03, "total {}", s.total_s);
        let c = sptrsv_cusparse(&fullchip_like(), 8, WS_COLD, &dev(), &p());
        assert!(c.total_s < s.total_s, "cusparse should beat syncfree here");
    }

    #[test]
    fn cached_vector_traffic_is_cheaper() {
        let t = nlpkkt_like();
        let hot = sptrsv_syncfree(&t, 8, WS_HOT, &dev(), &p());
        let cold = sptrsv_syncfree(&t, 8, WS_COLD, &dev(), &p());
        assert!(hot.total_s < cold.total_s);
    }

    #[test]
    fn f32_is_faster_but_not_half() {
        let t = nlpkkt_like();
        let d64 = sptrsv_syncfree(&t, 8, WS_COLD, &dev(), &p()).total_s;
        let d32 = sptrsv_syncfree(&t, 4, WS_COLD, &dev(), &p()).total_s;
        let ratio = d32 / d64;
        // Figure 7: sync-free double/single ratio ≈ 0.9 (mostly
        // structure-bound). Here ratio = time32/time64 < 1 but > 0.5.
        assert!(ratio < 1.0 && ratio > 0.6, "ratio {ratio}");
    }

    #[test]
    fn cusparse_launch_merging_logic() {
        assert_eq!(cusparse_launches(&[1, 1, 1, 1]), 1);
        assert_eq!(cusparse_launches(&[100, 1, 1, 100]), 3);
        assert_eq!(cusparse_launches(&[100, 100]), 2);
        assert_eq!(cusparse_launches(&[]), 0);
    }

    #[test]
    fn diag_solve_is_microseconds() {
        let t = sptrsv_diag(92_160, 8, WS_HOT, &dev(), &p());
        assert!(t.total_s < 100e-6, "diag solve {}", t.total_s);
    }

    #[test]
    fn scalar_vector_crossover_near_paper_threshold() {
        // Uniform rows, no empties: scalar should win for short rows,
        // vector for long rows, crossing over near nnz/row ≈ 12
        // (Figure 5(b)).
        let mk = |row: usize| SpmvProfile {
            nrows: 4096,
            ncols: 4096,
            nnz: 4096 * row,
            lanes: 4096,
            max_row: row + 2,
        };
        let t_at =
            |row: usize, kind: SpmvKind| spmv(kind, &mk(row), 8, WS_HOT, &dev(), &p()).work_s();
        assert!(
            t_at(4, SpmvKind::ScalarCsr) < t_at(4, SpmvKind::VectorCsr),
            "scalar should win short rows"
        );
        assert!(
            t_at(48, SpmvKind::VectorCsr) < t_at(48, SpmvKind::ScalarCsr),
            "vector should win long rows"
        );
    }

    #[test]
    fn dcsr_wins_on_hypersparse() {
        // 90% empty rows: DCSR skips them.
        let s =
            SpmvProfile { nrows: 100_000, ncols: 100_000, nnz: 40_000, lanes: 10_000, max_row: 6 };
        let csr = spmv(SpmvKind::ScalarCsr, &s, 8, WS_HOT, &dev(), &p()).work_s();
        let dcsr = spmv(SpmvKind::ScalarDcsr, &s, 8, WS_HOT, &dev(), &p()).work_s();
        assert!(dcsr < csr, "dcsr {dcsr} vs csr {csr}");
        let vcsr = spmv(SpmvKind::VectorCsr, &s, 8, WS_HOT, &dev(), &p()).work_s();
        let vdcsr = spmv(SpmvKind::VectorDcsr, &s, 8, WS_HOT, &dev(), &p()).work_s();
        assert!(vdcsr < vcsr, "vdcsr {vdcsr} vs vcsr {vcsr}");
    }

    #[test]
    fn scalar_csr_penalised_by_long_rows() {
        let uniform =
            SpmvProfile { nrows: 8192, ncols: 8192, nnz: 8192 * 8, lanes: 8192, max_row: 10 };
        let skewed =
            SpmvProfile { nrows: 8192, ncols: 8192, nnz: 8192 * 8, lanes: 8192, max_row: 30_000 };
        let tu = spmv(SpmvKind::ScalarCsr, &uniform, 8, WS_HOT, &dev(), &p()).work_s();
        let ts = spmv(SpmvKind::ScalarCsr, &skewed, 8, WS_HOT, &dev(), &p()).work_s();
        assert!(ts > 3.0 * tu, "skewed {ts} vs uniform {tu}");
        // Vector kernel shrugs it off by 32-way division.
        let vs = spmv(SpmvKind::VectorCsr, &skewed, 8, WS_HOT, &dev(), &p()).work_s();
        assert!(vs < ts);
    }

    #[test]
    fn rtx_faster_than_pascal() {
        let t = nlpkkt_like();
        let x = sptrsv_syncfree(&t, 8, WS_COLD, &DeviceSpec::titan_x_pascal(), &p()).total_s;
        let rtx = sptrsv_syncfree(&t, 8, WS_COLD, &DeviceSpec::titan_rtx_turing(), &p()).total_s;
        assert!(rtx < x, "rtx {rtx} vs pascal {x}");
    }

    #[test]
    fn prep_costs_are_in_paper_ballpark() {
        // Average paper matrix ~30M nnz: cuSPARSE ≈ 91ms, sync-free ≈ 2.3ms,
        // block ≈ 104ms.
        let t = TriProfile::from_levels(
            vec![15_000; 2_000],
            vec![15_000; 2_000],
            vec![8; 2_000],
            vec![8; 2_000],
        );
        let t = TriProfile { nnz: 30_000_000, ..t };
        let cu = cusparse_analysis_time(&t, &p());
        assert!(cu > 0.05 && cu < 0.2, "cusparse analysis {cu}");
        let sf = syncfree_prep_time(&t, &p());
        assert!(sf > 0.5e-3 && sf < 10e-3, "syncfree prep {sf}");
        let bp = block_prep_time(30_000_000, &p());
        assert!(bp > 0.05 && bp < 0.2, "block prep {bp}");
    }

    #[test]
    fn gflops_metric() {
        assert_eq!(gflops(1_000_000, 0.002), 1.0);
        assert_eq!(gflops(0, 1.0), 0.0);
        assert_eq!(gflops(10, 0.0), 0.0);
    }

    #[test]
    fn seq_composition_adds() {
        let a = KernelTime::assemble(1, 1e-3, 2e-3, &p());
        let b = KernelTime::assemble(2, 0.5e-3, 0.5e-3, &p());
        let c = a.seq(b);
        assert_eq!(c.launches, 3);
        assert!((c.total_s - (a.total_s + b.total_s)).abs() < 1e-15);
    }
}
