//! The service health state machine.
//!
//! Three states, strictly ordered by severity, derived from the live
//! counters rather than stored — so health can never disagree with the
//! evidence:
//!
//! * **Healthy** — steady state.
//! * **Degraded** — the service is still answering, but resilience
//!   machinery has fired: a worker panic was contained, or the store
//!   recovery scan quarantined corrupt plan files. Load balancers
//!   should prefer other replicas; operators should look.
//! * **Draining** — shutdown has begun; no new work is admitted and
//!   in-flight work is being answered.
//!
//! The state is surfaced on the wire (RBNET `StatOk` carries it as one
//! byte) and as the Prometheus gauge `recblock_health` (the numeric
//! value, so alerts are a threshold: `recblock_health >= 1`).

/// Service health, ordered by severity. The numeric values are part of
/// the RBNET `StatOk` payload and the `recblock_health` gauge — append
/// only, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Health {
    /// Steady state: no contained failures on record, not draining.
    Healthy = 0,
    /// Failures were contained (worker panics, quarantined plan files);
    /// the service still answers every request.
    Degraded = 1,
    /// Shutdown in progress: new work is refused, in-flight work drains.
    Draining = 2,
}

/// Worker panics at or above this mark a service [`Health::Degraded`].
pub const PANIC_DEGRADED_THRESHOLD: u64 = 1;

/// Quarantined store files at or above this mark a service
/// [`Health::Degraded`].
pub const QUARANTINE_DEGRADED_THRESHOLD: u64 = 1;

impl Health {
    /// Decode a wire byte.
    pub fn from_u8(v: u8) -> Option<Health> {
        Some(match v {
            0 => Health::Healthy,
            1 => Health::Degraded,
            2 => Health::Draining,
            _ => return None,
        })
    }

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Draining => "draining",
        }
    }

    /// Derive the state from the evidence counters.
    pub fn derive(draining: bool, worker_panics: u64, store_quarantined: u64) -> Health {
        if draining {
            Health::Draining
        } else if worker_panics >= PANIC_DEGRADED_THRESHOLD
            || store_quarantined >= QUARANTINE_DEGRADED_THRESHOLD
        {
            Health::Degraded
        } else {
            Health::Healthy
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_values_roundtrip_and_order_by_severity() {
        for h in [Health::Healthy, Health::Degraded, Health::Draining] {
            assert_eq!(Health::from_u8(h as u8), Some(h));
        }
        assert_eq!(Health::from_u8(3), None);
        assert!(Health::Healthy < Health::Degraded);
        assert!(Health::Degraded < Health::Draining);
    }

    #[test]
    fn derivation_prefers_draining_over_degraded() {
        assert_eq!(Health::derive(false, 0, 0), Health::Healthy);
        assert_eq!(Health::derive(false, 1, 0), Health::Degraded);
        assert_eq!(Health::derive(false, 0, 1), Health::Degraded);
        assert_eq!(Health::derive(true, 5, 5), Health::Draining);
    }
}
