//! Regenerate the paper's Figure 7 (double/single precision ratio).
//!
//! Pass an integer argument to shrink the corpus by that factor (faster).
use recblock_bench::HarnessConfig;
fn main() {
    let shrink: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let samples = recblock_bench::experiments::figure7::evaluate(&HarnessConfig::default(), shrink);
    print!("{}", recblock_bench::experiments::figure7::render(&samples));
}
