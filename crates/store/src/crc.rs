//! CRC-32C (Castagnoli, reflected polynomial `0x82F63B78`) over byte
//! slices.
//!
//! Castagnoli rather than the IEEE polynomial because x86_64 ships a
//! dedicated instruction for it (SSE 4.2 `crc32`), which checksums at
//! memory speed — the hot path on both save and load, where the CRC runs
//! over every payload byte of a multi-megabyte plan and must not rival the
//! cost of decoding it. When the instruction is unavailable the fallback
//! is table-driven slicing-by-16 (sixteen input bytes folded per step),
//! with all sixteen tables built in a `const fn`, so the module stays
//! dependency-free and the two paths produce identical checksums. CRC-32C
//! detects every single-byte corruption and all burst errors up to 32
//! bits — exactly the failure class a plan file on disk is exposed to.

/// Reflected CRC-32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

const SLICES: usize = 16;

const fn build_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = CRC of byte `b` followed by k zero bytes, so sixteen
    // lookups combine to advance the register by sixteen input bytes at
    // once.
    let mut k = 1;
    while k < SLICES {
        let mut b = 0;
        while b < 256 {
            let prev = tables[k - 1][b];
            tables[k][b] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            b += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; SLICES] = build_tables();

/// CRC-32C of `data` (Castagnoli, reflected, init/final-xor `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // Safety: the feature was just detected at runtime.
        return unsafe { crc32_hw(data) };
    }
    crc32_soft(data)
}

/// Hardware CRC-32C via the SSE 4.2 `crc32` instruction, eight bytes per
/// issue.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = !0u32 as u64;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

/// Table-driven fallback, identical output to the hardware path.
fn crc32_soft(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(SLICES);
    for c in &mut chunks {
        let w0 = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let w1 = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let w2 = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let w3 = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
        crc = TABLES[15][(w0 & 0xFF) as usize]
            ^ TABLES[14][((w0 >> 8) & 0xFF) as usize]
            ^ TABLES[13][((w0 >> 16) & 0xFF) as usize]
            ^ TABLES[12][((w0 >> 24) & 0xFF) as usize]
            ^ TABLES[11][(w1 & 0xFF) as usize]
            ^ TABLES[10][((w1 >> 8) & 0xFF) as usize]
            ^ TABLES[9][((w1 >> 16) & 0xFF) as usize]
            ^ TABLES[8][((w1 >> 24) & 0xFF) as usize]
            ^ TABLES[7][(w2 & 0xFF) as usize]
            ^ TABLES[6][((w2 >> 8) & 0xFF) as usize]
            ^ TABLES[5][((w2 >> 16) & 0xFF) as usize]
            ^ TABLES[4][((w2 >> 24) & 0xFF) as usize]
            ^ TABLES[3][(w3 & 0xFF) as usize]
            ^ TABLES[2][((w3 >> 8) & 0xFF) as usize]
            ^ TABLES[1][((w3 >> 16) & 0xFF) as usize]
            ^ TABLES[0][((w3 >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Multiply a GF(2) 32×32 matrix (one column per array entry) by a vector.
fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// `square = mat²` in GF(2).
fn gf2_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_times(mat, mat[n]);
    }
}

/// Combine `crc32(a)` and `crc32(b)` into `crc32(a ++ b)`, where `len2` is
/// `b.len()`. This is the zlib `crc32_combine` construction: appending
/// `len2` bytes to `a` multiplies its CRC register by `x^(8·len2)` in
/// GF(2), which is applied by squaring the one-zero-byte operator
/// `log2(len2)` times. It lets independent chunk CRCs — computed in
/// parallel — stitch into the exact whole-buffer checksum.
pub fn crc32_combine(crc1: u32, crc2: u32, mut len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32];
    let mut odd = [0u32; 32];

    // Operator for one zero *bit*: shift right, feeding back the polynomial.
    odd[0] = POLY;
    let mut row = 1u32;
    for item in odd.iter_mut().skip(1) {
        *item = row;
        row <<= 1;
    }
    gf2_square(&mut even, &odd); // two zero bits
    gf2_square(&mut odd, &even); // four zero bits

    let mut crc1 = crc1;
    loop {
        // Square to double the zero-run length; apply on set length bits.
        gf2_square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc1 = gf2_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

/// CRC-32 of `data`, computed over chunks on multiple threads and stitched
/// back together with [`crc32_combine`]. Bit-identical to [`crc32`]; falls
/// back to the serial routine for small inputs where thread spawn overhead
/// would dominate.
pub fn crc32_parallel(data: &[u8]) -> u32 {
    const MIN_CHUNK: usize = 1 << 20; // 1 MiB per thread, minimum
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
    if threads < 2 || data.len() < 2 * MIN_CHUNK {
        return crc32(data);
    }
    let chunk = data.len().div_ceil(threads);
    let parts: Vec<&[u8]> = data.chunks(chunk).collect();
    let crcs: Vec<u32> = std::thread::scope(|s| {
        let handles: Vec<_> = parts.iter().map(|p| s.spawn(move || crc32(p))).collect();
        handles.into_iter().map(|h| h.join().expect("crc worker panicked")).collect()
    });
    let mut acc = crcs[0];
    for (p, c) in parts.iter().zip(&crcs).skip(1) {
        acc = crc32_combine(acc, *c, p.len() as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical CRC-32C check value.
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn hardware_and_software_paths_agree() {
        let data: Vec<u8> = (0..3000u32).map(|i| (i.wrapping_mul(2654435761) >> 5) as u8).collect();
        for len in [0, 1, 7, 8, 9, 100, 2999, 3000] {
            assert_eq!(crc32(&data[..len]), crc32_soft(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn slicing_matches_bytewise_reference_at_every_length() {
        fn reference(data: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in data {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..100u32).map(|i| (i.wrapping_mul(193) >> 3) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32_soft(&data[..len]), reference(&data[..len]), "length {len}");
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = crc32(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[pos] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "missed flip at byte {pos} bit {bit}");
            }
        }
    }

    #[test]
    fn combine_matches_whole_buffer_crc() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i.wrapping_mul(2654435761) >> 7) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 9, 500, 999, 1000] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                whole,
                "split at {split}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_above_threshold() {
        // 3 MiB — large enough to take the multi-threaded path.
        let data: Vec<u8> = (0..3 << 20).map(|i: u32| (i.wrapping_mul(193) >> 3) as u8).collect();
        assert_eq!(crc32_parallel(&data), crc32(&data));
        assert_eq!(crc32_parallel(&data[..100]), crc32(&data[..100]));
        assert_eq!(crc32_parallel(b""), 0);
    }
}
