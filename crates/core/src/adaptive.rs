//! Adaptive kernel selection (the paper's Section 3.4, Figure 5 and
//! Algorithm 7).
//!
//! Triangular blocks are classified by `(nnz/row, nlevels)` into one of four
//! SpTRSV kernels; square blocks by `(nnz/row, emptyratio)` into one of four
//! SpMV kernels. The default thresholds are the ones the paper derived from
//! 373,814 measured kernel timings; the [`tuning`] submodule re-derives a
//! threshold grid from any measurement source (the Figure 5 harness feeds it
//! the GPU cost model).

use recblock_gpu_sim::cost::SpmvKind;

/// The four SpTRSV kernels of Algorithm 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriKernel {
    /// Diagonal-only block: perfect parallelism.
    CompletelyParallel,
    /// Few large levels: the basic level-set schedule.
    LevelSet,
    /// Tens to thousands of levels: the sync-free dataflow.
    SyncFree,
    /// Very many levels: the cuSPARSE-style merged-launch solver.
    CusparseLike,
}

impl TriKernel {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            TriKernel::CompletelyParallel => "completely-parallel",
            TriKernel::LevelSet => "level-set",
            TriKernel::SyncFree => "sync-free",
            TriKernel::CusparseLike => "cuSPARSE-like",
        }
    }
}

/// Selection thresholds (defaults = the paper's Figure 5 values).
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Level count above which the cuSPARSE-like solver wins (paper: 20000).
    pub cusparse_levels: usize,
    /// `nnz/row` at or below which level-set is considered (paper: 15).
    pub levelset_nnz_per_row: f64,
    /// Level count at or below which level-set is used with the above
    /// (paper: 20).
    pub levelset_levels: usize,
    /// Level count at or below which *unit* rows (`nnz/row ≈ 1`) still use
    /// level-set (paper: 100).
    pub levelset_unit_levels: usize,
    /// `nnz/row` separating scalar from vector SpMV kernels (paper: 12).
    pub spmv_nnz_per_row: f64,
    /// `emptyratio` above which scalar kernels switch to DCSR (paper: 0.5).
    pub scalar_empty_ratio: f64,
    /// `emptyratio` above which vector kernels switch to DCSR (paper: 0.15).
    pub vector_empty_ratio: f64,
    /// Shape guard (this port, not in the paper): when `nlevels / n` is at
    /// or above this ratio the block is chain-like — nearly one row per
    /// level — and the sync-free kernel's per-row flag traffic can only
    /// lose to the level-set schedule, which coarsens such a block into one
    /// serial run (≈ the serial kernel).
    pub chain_level_ratio: f64,
    /// Shape guard (this port): when the *average* level carries at least
    /// this many rows (`n / nlevels`), the level-set schedule has enough
    /// width per level for its engine (and the point-to-point task graph)
    /// to beat sync-free regardless of depth.
    pub wide_level_rows: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            cusparse_levels: 20_000,
            levelset_nnz_per_row: 15.0,
            levelset_levels: 20,
            levelset_unit_levels: 100,
            spmv_nnz_per_row: 12.0,
            scalar_empty_ratio: 0.5,
            vector_empty_ratio: 0.15,
            chain_level_ratio: 0.8,
            wide_level_rows: 256,
        }
    }
}

impl Thresholds {
    /// Select the SpTRSV kernel for a triangular block (Algorithm 7, lines
    /// 4–11). Shape-blind form kept for callers without a row count; the
    /// blocked solver uses [`Thresholds::select_tri_shaped`].
    pub fn select_tri(&self, nnz_per_row: f64, nlevels: usize) -> TriKernel {
        self.select_tri_shaped(nnz_per_row, nlevels, 0)
    }

    /// As [`Thresholds::select_tri`] with the block's row count `n`, which
    /// enables the two shape guards (`chain_level_ratio`,
    /// `wide_level_rows`); `n = 0` disables them and reproduces the paper's
    /// original Algorithm 7 tree exactly.
    pub fn select_tri_shaped(&self, nnz_per_row: f64, nlevels: usize, n: usize) -> TriKernel {
        if nlevels <= 1 {
            TriKernel::CompletelyParallel
        } else if nlevels > self.cusparse_levels {
            TriKernel::CusparseLike
        } else if (nnz_per_row <= 1.0 + 1e-9 && nlevels <= self.levelset_unit_levels)
            || (nnz_per_row <= self.levelset_nnz_per_row && nlevels <= self.levelset_levels)
            || (n > 0 && nlevels as f64 >= self.chain_level_ratio * n as f64)
            || (n > 0 && n / nlevels >= self.wide_level_rows)
        {
            TriKernel::LevelSet
        } else {
            TriKernel::SyncFree
        }
    }

    /// Select the SpMV kernel for a square block (Algorithm 7, lines 13–21).
    pub fn select_spmv(&self, nnz_per_row: f64, empty_ratio: f64) -> SpmvKind {
        if nnz_per_row <= self.spmv_nnz_per_row {
            if empty_ratio <= self.scalar_empty_ratio {
                SpmvKind::ScalarCsr
            } else {
                SpmvKind::ScalarDcsr
            }
        } else if empty_ratio <= self.vector_empty_ratio {
            SpmvKind::VectorCsr
        } else {
            SpmvKind::VectorDcsr
        }
    }

    /// As [`Thresholds::select_tri`], returning the full decision trail: the
    /// chosen kernel, the threshold that decided it, the comparison that
    /// fired, and the kernels rejected on the way. Always agrees with
    /// `select_tri` on the chosen kernel.
    pub fn explain_tri(&self, nnz_per_row: f64, nlevels: usize) -> TriDecision {
        self.explain_tri_shaped(nnz_per_row, nlevels, 0)
    }

    /// As [`Thresholds::explain_tri`] with the block's row count (see
    /// [`Thresholds::select_tri_shaped`]).
    pub fn explain_tri_shaped(&self, nnz_per_row: f64, nlevels: usize, n: usize) -> TriDecision {
        let rejected = |chosen: TriKernel| {
            ALL_TRI.iter().copied().filter(|k| *k != chosen).collect::<Vec<_>>()
        };
        if nlevels <= 1 {
            TriDecision {
                chosen: TriKernel::CompletelyParallel,
                threshold: "nlevels",
                rule: format!("nlevels={nlevels} <= 1: block is purely diagonal"),
                rejected: rejected(TriKernel::CompletelyParallel),
            }
        } else if nlevels > self.cusparse_levels {
            TriDecision {
                chosen: TriKernel::CusparseLike,
                threshold: "cusparse_levels",
                rule: format!("nlevels={nlevels} > cusparse_levels={}", self.cusparse_levels),
                rejected: rejected(TriKernel::CusparseLike),
            }
        } else if nnz_per_row <= 1.0 + 1e-9 && nlevels <= self.levelset_unit_levels {
            TriDecision {
                chosen: TriKernel::LevelSet,
                threshold: "levelset_unit_levels",
                rule: format!(
                    "nnz/row={nnz_per_row:.2} <= 1 (unit rows) and nlevels={nlevels} <= \
                     levelset_unit_levels={}",
                    self.levelset_unit_levels
                ),
                rejected: rejected(TriKernel::LevelSet),
            }
        } else if nnz_per_row <= self.levelset_nnz_per_row && nlevels <= self.levelset_levels {
            TriDecision {
                chosen: TriKernel::LevelSet,
                threshold: "levelset_levels",
                rule: format!(
                    "nnz/row={nnz_per_row:.2} <= levelset_nnz_per_row={} and nlevels={nlevels} \
                     <= levelset_levels={}",
                    self.levelset_nnz_per_row, self.levelset_levels
                ),
                rejected: rejected(TriKernel::LevelSet),
            }
        } else if n > 0 && nlevels as f64 >= self.chain_level_ratio * n as f64 {
            TriDecision {
                chosen: TriKernel::LevelSet,
                threshold: "chain_level_ratio",
                rule: format!(
                    "nlevels={nlevels} >= chain_level_ratio={} * n={n}: chain-like block, \
                     level-set coarsens it to a serial run (sync-free flag traffic rejected)",
                    self.chain_level_ratio
                ),
                rejected: rejected(TriKernel::LevelSet),
            }
        } else if n > 0 && n / nlevels >= self.wide_level_rows {
            TriDecision {
                chosen: TriKernel::LevelSet,
                threshold: "wide_level_rows",
                rule: format!(
                    "n/nlevels={} >= wide_level_rows={}: wide levels, engine schedule \
                     (level-sync or p2p) beats sync-free",
                    n / nlevels,
                    self.wide_level_rows
                ),
                rejected: rejected(TriKernel::LevelSet),
            }
        } else {
            // Level-set lost on rows or on depth; name the comparison that
            // knocked it out.
            let (threshold, why) = if nnz_per_row > self.levelset_nnz_per_row {
                (
                    "levelset_nnz_per_row",
                    format!(
                        "nnz/row={nnz_per_row:.2} > levelset_nnz_per_row={}",
                        self.levelset_nnz_per_row
                    ),
                )
            } else {
                (
                    "levelset_levels",
                    format!("nlevels={nlevels} > levelset_levels={}", self.levelset_levels),
                )
            };
            TriDecision {
                chosen: TriKernel::SyncFree,
                threshold,
                rule: format!(
                    "{why} and nlevels={nlevels} <= cusparse_levels={}",
                    self.cusparse_levels
                ),
                rejected: rejected(TriKernel::SyncFree),
            }
        }
    }

    /// As [`Thresholds::select_spmv`], returning the full decision trail.
    /// Always agrees with `select_spmv` on the chosen kernel.
    pub fn explain_spmv(&self, nnz_per_row: f64, empty_ratio: f64) -> SpmvDecision {
        let rejected = |chosen: SpmvKind| {
            SpmvKind::ALL.iter().copied().filter(|k| *k != chosen).collect::<Vec<_>>()
        };
        let (chosen, threshold, rule) = if nnz_per_row <= self.spmv_nnz_per_row {
            if empty_ratio <= self.scalar_empty_ratio {
                (
                    SpmvKind::ScalarCsr,
                    "scalar_empty_ratio",
                    format!(
                        "nnz/row={nnz_per_row:.2} <= spmv_nnz_per_row={} (scalar) and \
                         emptyratio={empty_ratio:.2} <= scalar_empty_ratio={} (CSR)",
                        self.spmv_nnz_per_row, self.scalar_empty_ratio
                    ),
                )
            } else {
                (
                    SpmvKind::ScalarDcsr,
                    "scalar_empty_ratio",
                    format!(
                        "nnz/row={nnz_per_row:.2} <= spmv_nnz_per_row={} (scalar) and \
                         emptyratio={empty_ratio:.2} > scalar_empty_ratio={} (DCSR)",
                        self.spmv_nnz_per_row, self.scalar_empty_ratio
                    ),
                )
            }
        } else if empty_ratio <= self.vector_empty_ratio {
            (
                SpmvKind::VectorCsr,
                "vector_empty_ratio",
                format!(
                    "nnz/row={nnz_per_row:.2} > spmv_nnz_per_row={} (vector) and \
                     emptyratio={empty_ratio:.2} <= vector_empty_ratio={} (CSR)",
                    self.spmv_nnz_per_row, self.vector_empty_ratio
                ),
            )
        } else {
            (
                SpmvKind::VectorDcsr,
                "vector_empty_ratio",
                format!(
                    "nnz/row={nnz_per_row:.2} > spmv_nnz_per_row={} (vector) and \
                     emptyratio={empty_ratio:.2} > vector_empty_ratio={} (DCSR)",
                    self.spmv_nnz_per_row, self.vector_empty_ratio
                ),
            )
        };
        SpmvDecision { chosen, threshold, rule, rejected: rejected(chosen) }
    }
}

const ALL_TRI: [TriKernel; 4] = [
    TriKernel::CompletelyParallel,
    TriKernel::LevelSet,
    TriKernel::SyncFree,
    TriKernel::CusparseLike,
];

/// One explained SpTRSV kernel selection (Algorithm 7 with its working
/// shown): what was chosen, which threshold decided it, the comparison that
/// fired, and what lost.
#[derive(Debug, Clone, PartialEq)]
pub struct TriDecision {
    /// The kernel Algorithm 7 picked.
    pub chosen: TriKernel,
    /// Name of the [`Thresholds`] field whose comparison decided the branch.
    pub threshold: &'static str,
    /// Human-readable statement of the comparison, with observed values.
    pub rule: String,
    /// The candidates that lost.
    pub rejected: Vec<TriKernel>,
}

/// One explained SpMV kernel selection (square blocks).
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvDecision {
    /// The kernel Algorithm 7 picked (possibly amended by build-time
    /// overrides — see the rule text).
    pub chosen: SpmvKind,
    /// Name of the [`Thresholds`] field whose comparison decided the branch.
    pub threshold: &'static str,
    /// Human-readable statement of the comparison, with observed values.
    pub rule: String,
    /// The candidates that lost.
    pub rejected: Vec<SpmvKind>,
}

/// How the blocked solver picks kernels per block.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// The adaptive decision tree with the given thresholds.
    Adaptive(Thresholds),
    /// Force one SpTRSV kernel and one SpMV kernel everywhere (ablation
    /// baseline). `CompletelyParallel` is still used for diagonal blocks,
    /// where the fixed kernel would be semantically identical but slower.
    Fixed(TriKernel, SpmvKind),
}

impl Default for Selector {
    fn default() -> Self {
        Selector::Adaptive(Thresholds::default())
    }
}

impl Selector {
    /// Resolve the SpTRSV kernel for a block.
    pub fn tri(&self, nnz_per_row: f64, nlevels: usize) -> TriKernel {
        self.tri_shaped(nnz_per_row, nlevels, 0)
    }

    /// Resolve the SpTRSV kernel for a block of `n` rows (shape guards
    /// active — see [`Thresholds::select_tri_shaped`]).
    pub fn tri_shaped(&self, nnz_per_row: f64, nlevels: usize, n: usize) -> TriKernel {
        match self {
            Selector::Adaptive(t) => t.select_tri_shaped(nnz_per_row, nlevels, n),
            Selector::Fixed(k, _) => {
                if nlevels <= 1 {
                    TriKernel::CompletelyParallel
                } else {
                    *k
                }
            }
        }
    }

    /// Resolve the SpMV kernel for a block.
    pub fn spmv(&self, nnz_per_row: f64, empty_ratio: f64) -> SpmvKind {
        match self {
            Selector::Adaptive(t) => t.select_spmv(nnz_per_row, empty_ratio),
            Selector::Fixed(_, k) => *k,
        }
    }

    /// As [`Selector::tri`] with the decision trail. Always agrees with
    /// `tri` on the chosen kernel.
    pub fn explain_tri(&self, nnz_per_row: f64, nlevels: usize) -> TriDecision {
        self.explain_tri_shaped(nnz_per_row, nlevels, 0)
    }

    /// As [`Selector::tri_shaped`] with the decision trail. Always agrees
    /// with `tri_shaped` on the chosen kernel.
    pub fn explain_tri_shaped(&self, nnz_per_row: f64, nlevels: usize, n: usize) -> TriDecision {
        match self {
            Selector::Adaptive(t) => t.explain_tri_shaped(nnz_per_row, nlevels, n),
            Selector::Fixed(k, _) => {
                if nlevels <= 1 {
                    TriDecision {
                        chosen: TriKernel::CompletelyParallel,
                        threshold: "nlevels",
                        rule: format!(
                            "nlevels={nlevels} <= 1: diagonal block (fixed selector still takes \
                             the trivial kernel)"
                        ),
                        rejected: vec![*k],
                    }
                } else {
                    TriDecision {
                        chosen: *k,
                        threshold: "fixed",
                        rule: "fixed selector (ablation): kernel forced, no thresholds consulted"
                            .to_string(),
                        rejected: ALL_TRI.iter().copied().filter(|c| c != k).collect(),
                    }
                }
            }
        }
    }

    /// As [`Selector::spmv`] with the decision trail. Always agrees with
    /// `spmv` on the chosen kernel.
    pub fn explain_spmv(&self, nnz_per_row: f64, empty_ratio: f64) -> SpmvDecision {
        match self {
            Selector::Adaptive(t) => t.explain_spmv(nnz_per_row, empty_ratio),
            Selector::Fixed(_, k) => SpmvDecision {
                chosen: *k,
                threshold: "fixed",
                rule: "fixed selector (ablation): kernel forced, no thresholds consulted"
                    .to_string(),
                rejected: SpmvKind::ALL.iter().copied().filter(|c| c != k).collect(),
            },
        }
    }
}

pub mod tuning {
    //! Re-derive selection maps from measurements (the Figure 5 harness).
    //!
    //! The paper collected 203,251 SpTRSV and 170,563 SpMV timings over
    //! sub-matrices of its dataset, bucketed them by parameter pair, and
    //! picked the overall fastest kernel per bucket. [`BestKernelGrid`]
    //! reproduces that aggregation for any measurement closure.

    /// A 2-D grid of "best kernel" decisions with labelled axes.
    #[derive(Debug, Clone)]
    pub struct BestKernelGrid<K> {
        /// Axis values along x (e.g. `nnz/row` buckets).
        pub x_values: Vec<f64>,
        /// Axis values along y (e.g. `nlevels` or `emptyratio` buckets).
        pub y_values: Vec<f64>,
        /// `cells[y][x]` = the winning kernel for that parameter pair.
        pub cells: Vec<Vec<K>>,
    }

    impl<K: Copy + PartialEq> BestKernelGrid<K> {
        /// Build the grid by evaluating `measure(kernel, x, y) → seconds`
        /// for every candidate at every cell and keeping the fastest.
        pub fn collect<F>(
            x_values: Vec<f64>,
            y_values: Vec<f64>,
            kernels: &[K],
            mut measure: F,
        ) -> Self
        where
            F: FnMut(K, f64, f64) -> f64,
        {
            assert!(!kernels.is_empty());
            let cells = y_values
                .iter()
                .map(|&y| {
                    x_values
                        .iter()
                        .map(|&x| {
                            let mut best = kernels[0];
                            let mut best_t = f64::INFINITY;
                            for &k in kernels {
                                let t = measure(k, x, y);
                                if t < best_t {
                                    best_t = t;
                                    best = k;
                                }
                            }
                            best
                        })
                        .collect()
                })
                .collect();
            BestKernelGrid { x_values, y_values, cells }
        }

        /// Fraction of cells won by `kernel`.
        pub fn share(&self, kernel: K) -> f64 {
            let total: usize = self.cells.iter().map(|r| r.len()).sum();
            if total == 0 {
                return 0.0;
            }
            let won: usize = self.cells.iter().flatten().filter(|&&c| c == kernel).count();
            won as f64 / total as f64
        }

        /// The winning kernel at `(xi, yi)` (indices into the axis vectors).
        pub fn at(&self, xi: usize, yi: usize) -> K {
            self.cells[yi][xi]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm7_tri_branches() {
        let t = Thresholds::default();
        // Diagonal block.
        assert_eq!(t.select_tri(1.0, 1), TriKernel::CompletelyParallel);
        // Very many levels → cuSPARSE.
        assert_eq!(t.select_tri(3.0, 50_000), TriKernel::CusparseLike);
        // Few levels, short rows → level-set.
        assert_eq!(t.select_tri(8.0, 10), TriKernel::LevelSet);
        // Unit rows, up to 100 levels → level-set.
        assert_eq!(t.select_tri(1.0, 80), TriKernel::LevelSet);
        // Everything else → sync-free.
        assert_eq!(t.select_tri(8.0, 500), TriKernel::SyncFree);
        assert_eq!(t.select_tri(40.0, 10), TriKernel::SyncFree);
        assert_eq!(t.select_tri(1.0, 150), TriKernel::SyncFree);
    }

    #[test]
    fn shape_guards_fire_only_with_row_count() {
        let t = Thresholds::default();
        // Chain-like block: one row per level → level-set (which coarsens
        // it to a serial run), decided by the chain guard.
        assert_eq!(t.select_tri_shaped(2.0, 5000, 5000), TriKernel::LevelSet);
        assert_eq!(t.explain_tri_shaped(2.0, 5000, 5000).threshold, "chain_level_ratio");
        // Wide levels: hundreds of rows per level on average.
        assert_eq!(t.select_tri_shaped(4.5, 31, 10_000), TriKernel::LevelSet);
        assert_eq!(t.explain_tri_shaped(4.5, 31, 10_000).threshold, "wide_level_rows");
        // n = 0 disables both guards: the paper's original tree.
        assert_eq!(t.select_tri(2.0, 5000), TriKernel::SyncFree);
        assert_eq!(t.select_tri(4.5, 31), TriKernel::SyncFree);
        // Narrow deep blocks still go sync-free even with n known.
        assert_eq!(t.select_tri_shaped(8.0, 500, 8000), TriKernel::SyncFree);
        // explain always agrees with select.
        for &(npr, nlv, n) in &[
            (2.0, 5000usize, 5000usize),
            (4.5, 31, 10_000),
            (8.0, 500, 80_000),
            (40.0, 10, 4000),
            (3.0, 50_000, 50_000),
        ] {
            let d = t.explain_tri_shaped(npr, nlv, n);
            assert_eq!(d.chosen, t.select_tri_shaped(npr, nlv, n), "npr={npr} nlv={nlv} n={n}");
        }
    }

    #[test]
    fn algorithm7_spmv_branches() {
        let t = Thresholds::default();
        assert_eq!(t.select_spmv(5.0, 0.2), SpmvKind::ScalarCsr);
        assert_eq!(t.select_spmv(5.0, 0.8), SpmvKind::ScalarDcsr);
        assert_eq!(t.select_spmv(30.0, 0.1), SpmvKind::VectorCsr);
        assert_eq!(t.select_spmv(30.0, 0.4), SpmvKind::VectorDcsr);
        // Boundary values fall to the "≤" side, as in Algorithm 7.
        assert_eq!(t.select_spmv(12.0, 0.5), SpmvKind::ScalarCsr);
        assert_eq!(t.select_spmv(13.0, 0.15), SpmvKind::VectorCsr);
    }

    #[test]
    fn fixed_selector_overrides() {
        let s = Selector::Fixed(TriKernel::SyncFree, SpmvKind::VectorCsr);
        assert_eq!(s.tri(2.0, 5), TriKernel::SyncFree);
        assert_eq!(s.spmv(2.0, 0.9), SpmvKind::VectorCsr);
        // Diagonal blocks still take the trivial kernel.
        assert_eq!(s.tri(1.0, 1), TriKernel::CompletelyParallel);
    }

    #[test]
    fn explain_agrees_with_select_everywhere() {
        let t = Thresholds::default();
        for &npr in &[0.5, 1.0, 1.0 + 1e-10, 2.0, 8.0, 12.0, 15.0, 15.1, 40.0] {
            for &nlv in &[0usize, 1, 2, 20, 21, 80, 100, 101, 150, 20_000, 20_001, 50_000] {
                let d = t.explain_tri(npr, nlv);
                assert_eq!(d.chosen, t.select_tri(npr, nlv), "npr={npr} nlv={nlv}");
                assert_eq!(d.rejected.len(), 3);
                assert!(!d.rejected.contains(&d.chosen));
                assert!(!d.rule.is_empty() && !d.threshold.is_empty());
            }
            for &er in &[0.0, 0.15, 0.16, 0.5, 0.51, 0.9] {
                let d = t.explain_spmv(npr, er);
                assert_eq!(d.chosen, t.select_spmv(npr, er), "npr={npr} er={er}");
                assert_eq!(d.rejected.len(), 3);
                assert!(!d.rejected.contains(&d.chosen));
            }
        }
    }

    #[test]
    fn explain_names_the_deciding_threshold() {
        let t = Thresholds::default();
        assert_eq!(t.explain_tri(3.0, 50_000).threshold, "cusparse_levels");
        assert_eq!(t.explain_tri(1.0, 80).threshold, "levelset_unit_levels");
        assert_eq!(t.explain_tri(8.0, 10).threshold, "levelset_levels");
        // Sync-free because the rows are too heavy for level-set…
        assert_eq!(t.explain_tri(40.0, 10).threshold, "levelset_nnz_per_row");
        // …or because the level count is too deep.
        assert_eq!(t.explain_tri(8.0, 500).threshold, "levelset_levels");
        assert_eq!(t.explain_spmv(5.0, 0.8).threshold, "scalar_empty_ratio");
        assert_eq!(t.explain_spmv(30.0, 0.1).threshold, "vector_empty_ratio");
    }

    #[test]
    fn fixed_selector_explains_as_forced() {
        let s = Selector::Fixed(TriKernel::SyncFree, SpmvKind::VectorCsr);
        let d = s.explain_tri(2.0, 5);
        assert_eq!(d.chosen, TriKernel::SyncFree);
        assert_eq!(d.threshold, "fixed");
        assert_eq!(s.explain_tri(1.0, 1).chosen, TriKernel::CompletelyParallel);
        assert_eq!(s.explain_spmv(2.0, 0.9).chosen, SpmvKind::VectorCsr);
    }

    #[test]
    fn grid_picks_fastest() {
        use tuning::BestKernelGrid;
        let grid =
            BestKernelGrid::collect(vec![1.0, 10.0], vec![0.0, 1.0], &["a", "b"], |k, x, y| {
                if k == "a" {
                    x + y
                } else {
                    10.0 - x - y
                }
            });
        // a wins where x + y < 5, b elsewhere.
        assert_eq!(grid.at(0, 0), "a");
        assert_eq!(grid.at(1, 1), "b");
        assert!(grid.share("a") > 0.0 && grid.share("b") > 0.0);
    }
}
