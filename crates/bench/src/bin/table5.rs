//! Regenerate the paper's Table 5 (preprocessing amortisation).
use recblock_bench::HarnessConfig;
fn main() {
    let shrink: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let stats = recblock_bench::experiments::table5::evaluate(&HarnessConfig::default(), shrink, 4);
    print!("{}", recblock_bench::experiments::table5::render(&stats));
}
