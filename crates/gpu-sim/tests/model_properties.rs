//! Property tests over the analytic cost model: whatever the constants,
//! the model must respect basic physical monotonicities, or comparisons
//! built on it are meaningless.

use proptest::prelude::*;
use recblock_gpu_sim::cost::{self, SpmvKind};
use recblock_gpu_sim::{CostParams, DeviceSpec, SpmvProfile, TriProfile};

/// Strategy: a plausible triangular profile.
fn arb_tri() -> impl Strategy<Value = TriProfile> {
    (1usize..40, 1usize..2000, 1u32..40).prop_map(|(nlevels, rows_per_level, nnzr)| {
        let rows = vec![rows_per_level; nlevels];
        let nnz = vec![rows_per_level * nnzr as usize; nlevels];
        let maxr = vec![(nnzr as usize) + 2; nlevels];
        let maxc = vec![(nnzr as usize) + 1; nlevels];
        TriProfile::from_levels(rows, nnz, maxr, maxc)
    })
}

/// Strategy: a plausible square-block profile.
fn arb_sq() -> impl Strategy<Value = SpmvProfile> {
    (64usize..100_000, 1u32..60, 0u32..95).prop_map(|(nrows, nnzr, empty_pct)| {
        let lanes = (nrows as f64 * (1.0 - empty_pct as f64 / 100.0)).max(1.0) as usize;
        let nnz = nrows * nnzr as usize;
        SpmvProfile { nrows, ncols: nrows, nnz, lanes, max_row: 2 * nnzr as usize + 1 }
    })
}

fn devices() -> (DeviceSpec, DeviceSpec) {
    (DeviceSpec::titan_x_pascal(), DeviceSpec::titan_rtx_turing())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sptrsv_times_positive_and_finite(t in arb_tri(), ws in 1usize..1_000_000_000) {
        let (_, rtx) = devices();
        let p = CostParams::default();
        for time in [
            cost::sptrsv_levelset(&t, 8, ws, &rtx, &p),
            cost::sptrsv_cusparse(&t, 8, ws, &rtx, &p),
            cost::sptrsv_syncfree(&t, 8, ws, &rtx, &p),
        ] {
            prop_assert!(time.total_s > 0.0 && time.total_s.is_finite());
            prop_assert!(time.total_s + 1e-15 >= time.launch_s);
        }
    }

    #[test]
    fn better_device_is_never_slower(t in arb_tri()) {
        let (x, rtx) = devices();
        let p = CostParams::default();
        let ws = 1 << 26;
        prop_assert!(
            cost::sptrsv_syncfree(&t, 8, ws, &rtx, &p).total_s
                <= cost::sptrsv_syncfree(&t, 8, ws, &x, &p).total_s * 1.0001
        );
        prop_assert!(
            cost::sptrsv_cusparse(&t, 8, ws, &rtx, &p).total_s
                <= cost::sptrsv_cusparse(&t, 8, ws, &x, &p).total_s * 1.0001
        );
    }

    #[test]
    fn single_precision_is_never_slower(t in arb_tri(), ws in 1usize..1_000_000_000) {
        let (_, rtx) = devices();
        let p = CostParams::default();
        prop_assert!(
            cost::sptrsv_syncfree(&t, 4, ws, &rtx, &p).total_s
                <= cost::sptrsv_syncfree(&t, 8, ws, &rtx, &p).total_s * 1.0001
        );
        prop_assert!(
            cost::sptrsv_levelset(&t, 4, ws, &rtx, &p).total_s
                <= cost::sptrsv_levelset(&t, 8, ws, &rtx, &p).total_s * 1.0001
        );
    }

    #[test]
    fn worse_locality_is_never_faster(t in arb_tri()) {
        let (_, rtx) = devices();
        let p = CostParams::default();
        let hot = cost::sptrsv_syncfree(&t, 8, 1 << 16, &rtx, &p).total_s;
        let cold = cost::sptrsv_syncfree(&t, 8, 1 << 30, &rtx, &p).total_s;
        prop_assert!(hot <= cold * 1.0001, "hot {hot} cold {cold}");
    }

    #[test]
    fn data_scale_grows_time(t in arb_tri(), scale in 2u32..64) {
        let (_, rtx) = devices();
        let base = CostParams::default();
        let scaled = CostParams { data_scale: scale as f64, ..CostParams::default() };
        let ws = 1 << 24;
        prop_assert!(
            cost::sptrsv_syncfree(&t, 8, ws, &rtx, &scaled).total_s
                >= cost::sptrsv_syncfree(&t, 8, ws, &rtx, &base).total_s * 0.9999
        );
    }

    #[test]
    fn spmv_times_positive_all_kernels(s in arb_sq(), ws in 1usize..1_000_000_000) {
        let (_, rtx) = devices();
        let p = CostParams::default();
        for kind in SpmvKind::ALL {
            let t = cost::spmv(kind, &s, 8, ws, &rtx, &p);
            prop_assert!(t.total_s > 0.0 && t.total_s.is_finite(), "{kind:?}");
            prop_assert_eq!(t.launches, 1);
        }
    }

    #[test]
    fn dcsr_never_loses_badly_on_hypersparse(s in arb_sq()) {
        // Deep in the hyper-sparse regime (≥ 65% empty, realistically sized
        // blocks) DCSR must be at least competitive with CSR for the same
        // scheduling flavour. A modest tolerance remains: skipping rows also
        // reduces the scheduled-unit count, which legitimately costs some
        // memory-level parallelism near the boundary.
        // Large enough that both kernels saturate the device (the regime
        // the selector actually prices: scaled full-size blocks).
        prop_assume!(s.empty_ratio() > 0.65 && s.nrows >= 65_536);
        let (_, rtx) = devices();
        let p = CostParams::default();
        let ws = 1 << 22;
        let scalar_csr = cost::spmv(SpmvKind::ScalarCsr, &s, 8, ws, &rtx, &p).work_s();
        let scalar_dcsr = cost::spmv(SpmvKind::ScalarDcsr, &s, 8, ws, &rtx, &p).work_s();
        prop_assert!(scalar_dcsr <= scalar_csr * 1.10);
    }

    #[test]
    fn gflops_inverse_to_time(nnz in 1usize..1_000_000_000, ms in 1u32..100_000) {
        let t = ms as f64 * 1e-3;
        let g = cost::gflops(nnz, t);
        prop_assert!((g * t * 1e9 - 2.0 * nnz as f64).abs() < 1.0);
    }

    #[test]
    fn profile_scaling_preserves_structure(t in arb_tri(), f in 2u32..64) {
        let s = t.scaled(f as f64);
        prop_assert_eq!(s.nlevels(), t.nlevels());
        // Rows and nnz scale by f (within rounding).
        prop_assert!((s.n as f64 - t.n as f64 * f as f64).abs() <= t.nlevels() as f64);
        // nnz/row is preserved (within rounding).
        prop_assert!((s.nnz_per_row() - t.nnz_per_row()).abs() < 0.05 * t.nnz_per_row().max(1.0));
    }
}
