//! Analytic GPU performance model for SpTRSV/SpMV kernels.
//!
//! The paper's evaluation ran CUDA kernels on an NVIDIA Titan X (Pascal) and
//! a Titan RTX (Turing). Without those GPUs, this crate supplies the
//! substitute the reproduction uses for every timing figure: an analytic
//! cost model that charges each algorithm for exactly the effects the
//! paper's own analysis attributes its results to —
//!
//! * **kernel-launch overhead per level** — why cuSPARSE/level-set methods
//!   collapse on matrices with hundreds of thousands of levels (`tmt_sym`);
//! * **dependency-chain latency and atomic fan-out** — why Sync-free
//!   collapses on power-law matrices with very long columns (`FullChip`,
//!   `vas_stokes_4M`);
//! * **device utilisation** — why tiny levels waste a 4608-core GPU;
//! * **cache residency of the `x`/`b` working set** — why the recursive
//!   block algorithm's small segments win (`nlpkkt200`), and why its
//!   advantage grows with matrix size;
//! * **bytes per element** — why double/single precision ratios differ per
//!   algorithm (Figure 7).
//!
//! The model is deliberately *not* a cycle-accurate simulator: it predicts
//! relative behaviour (who wins, by what factor, where crossovers fall), not
//! absolute hardware timings. A small discrete-event warp simulator
//! ([`microsim`]) validates the critical-path terms on small matrices.

#![warn(missing_docs)]

pub mod cost;
pub mod device;
pub mod microsim;
pub mod profile;

pub use cost::{CostParams, KernelTime};
pub use device::DeviceSpec;
pub use profile::{SpmvProfile, TriProfile};
