//! CPU wall-clock comparison of the three block algorithms (Figure 4's
//! subject, measured for real on this machine) across part counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recblock::adaptive::Selector;
use recblock::column::ColumnBlockSolver;
use recblock::recursive::RecursiveBlockSolver;
use recblock::row::RowBlockSolver;
use recblock_matrix::generate;
use std::time::Duration;

fn bench_blocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_algorithms");
    g.measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    let l = generate::layered::<f64>(30_000, 17, 2.5, generate::LayerShape::Geometric(0.85), 7);
    let b: Vec<f64> = (0..30_000).map(|i| (i % 11) as f64 - 5.0).collect();
    let sel = Selector::default();

    for parts in [4usize, 16, 64] {
        let depth = parts.trailing_zeros() as usize;
        let col = ColumnBlockSolver::new(&l, parts, &sel, 4).unwrap();
        g.bench_with_input(BenchmarkId::new("column", parts), &col, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
        let row = RowBlockSolver::new(&l, parts, &sel, 4).unwrap();
        g.bench_with_input(BenchmarkId::new("row", parts), &row, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
        let rec = RecursiveBlockSolver::new(&l, depth, &sel, 4).unwrap();
        g.bench_with_input(BenchmarkId::new("recursive", parts), &rec, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_blocks);
criterion_main!(benches);
