//! Seeded deterministic fault injection for the recblock stack.
//!
//! Production code is threaded with named *injection points* — store
//! reads, socket writes, worker dispatch, engine chunks — each a single
//! call to [`fires`]. A test installs a [`FaultPlan`] mapping points to
//! [`Trigger`]s (always / one-shot / every-nth / seeded probability) and
//! the next time execution crosses an armed point the fault fires:
//! the site injects an I/O error, tears a write, panics, or stalls,
//! exactly as the real failure would.
//!
//! The design follows the `trace` feature's cost model
//! (`recblock-kernels/src/trace.rs`):
//!
//! - **Feature off** (`faults` not enabled): [`compiled`] is a `const
//!   false`, so every site folds to nothing at compile time.
//! - **Compiled but disarmed** (feature on, no plan installed): one
//!   relaxed atomic load per site — cheap enough to leave in the solve
//!   and event-loop hot paths, pinned by the counting-allocator
//!   regression tests which run with `faults` compiled in.
//! - **Armed**: a cold path evaluates the point's trigger against
//!   lock-free per-point counters. Probability triggers hash
//!   `(seed, point, hit index)` with a SplitMix64 mix, so a given seed
//!   reproduces the exact same fault sequence on every run — chaos
//!   failures replay.
//!
//! State is process-global (like `SolveTrace`): tests that install
//! plans must serialize on a shared lock.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Named places in the stack where a fault can be injected. The numeric
/// values index the global state table; append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FaultPoint {
    /// `store`: reading a plan file from disk (injects an I/O error).
    StoreRead = 0,
    /// `store`: after the read, before decode (flips one bit, so the
    /// CRC check must catch it).
    StoreDecode = 1,
    /// `store`: persisting a plan (tears the write — only a prefix of
    /// the bytes reaches the file, and the sync is skipped).
    StoreWrite = 2,
    /// `net`: accepting a connection (drops it immediately).
    NetAccept = 3,
    /// `net`: reading from a connection (pretends `EAGAIN`).
    NetRead = 4,
    /// `net`: flushing a response (pretends `EAGAIN` mid-frame).
    NetWrite = 5,
    /// `net`: the completion-queue wake byte (swallows the wake; the
    /// event loop's poll timeout must recover).
    NetWake = 6,
    /// `serve`: a worker solving a batch (panics mid-solve).
    ServeDispatch = 7,
    /// `kernels`: an exec-pool chunk job (panics inside the pool).
    ExecChunk = 8,
    /// `kernels`: an exec-pool chunk job (sleeps ~1 ms, a slow solve).
    ExecSlow = 9,
    /// `cluster`: pushing a plan to a peer (the push is silently dropped
    /// before any bytes leave the node).
    ClusterPush = 10,
    /// `cluster`: applying a received `RingState` (the update is skipped,
    /// leaving this node with a stale ring view).
    ClusterRing = 11,
    /// `cluster`: after winning the cluster-wide build grant, before the
    /// built plan is pushed (the builder "crashes" — the grant must
    /// expire so another node can retry).
    ClusterBuild = 12,
}

/// Number of injection points (size of the state table).
pub const POINT_COUNT: usize = 13;

/// All points, for iteration and plan randomization.
pub const ALL_POINTS: [FaultPoint; POINT_COUNT] = [
    FaultPoint::StoreRead,
    FaultPoint::StoreDecode,
    FaultPoint::StoreWrite,
    FaultPoint::NetAccept,
    FaultPoint::NetRead,
    FaultPoint::NetWrite,
    FaultPoint::NetWake,
    FaultPoint::ServeDispatch,
    FaultPoint::ExecChunk,
    FaultPoint::ExecSlow,
    FaultPoint::ClusterPush,
    FaultPoint::ClusterRing,
    FaultPoint::ClusterBuild,
];

impl FaultPoint {
    /// Stable machine-readable name (logs, plan descriptions).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::StoreRead => "store_read",
            FaultPoint::StoreDecode => "store_decode",
            FaultPoint::StoreWrite => "store_write",
            FaultPoint::NetAccept => "net_accept",
            FaultPoint::NetRead => "net_read",
            FaultPoint::NetWrite => "net_write",
            FaultPoint::NetWake => "net_wake",
            FaultPoint::ServeDispatch => "serve_dispatch",
            FaultPoint::ExecChunk => "exec_chunk",
            FaultPoint::ExecSlow => "exec_slow",
            FaultPoint::ClusterPush => "cluster_push",
            FaultPoint::ClusterRing => "cluster_ring",
            FaultPoint::ClusterBuild => "cluster_build",
        }
    }
}

/// When an armed injection point actually fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Point stays inert (the default for unlisted points).
    Never,
    /// Fires on every hit.
    Always,
    /// Fires on the first hit only.
    OneShot,
    /// Fires on the `n`-th hit (1-based) only.
    Nth(u64),
    /// Fires on each hit independently with probability `p`, derived
    /// deterministically from the plan seed and the hit index.
    Prob(f64),
}

const MODE_NEVER: u8 = 0;
const MODE_ALWAYS: u8 = 1;
const MODE_ONESHOT: u8 = 2;
const MODE_NTH: u8 = 3;
const MODE_PROB: u8 = 4;

/// Lock-free per-point runtime state.
struct PointState {
    mode: AtomicU8,
    /// `Nth`: the 1-based hit index. `Prob`: the probability's f64 bits.
    param: AtomicU64,
    /// Times the site was evaluated while armed.
    hits: AtomicU64,
    /// Times the fault actually fired.
    fired: AtomicU64,
    /// Deterministic per-fire auxiliary value (bit position, prefix
    /// length, …) stashed for the site to pick up via [`aux`].
    last_aux: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const POINT_INIT: PointState = PointState {
    mode: AtomicU8::new(MODE_NEVER),
    param: AtomicU64::new(0),
    hits: AtomicU64::new(0),
    fired: AtomicU64::new(0),
    last_aux: AtomicU64::new(0),
};

static POINTS: [PointState; POINT_COUNT] = [POINT_INIT; POINT_COUNT];
static SEED: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

/// Whether injection sites were compiled in at all.
pub const fn compiled() -> bool {
    cfg!(feature = "faults")
}

/// Whether a plan is currently armed. This is the entire hot-path cost
/// when no faults are active: a compile-time `false` without the
/// feature, one relaxed load with it.
#[inline(always)]
pub fn armed() -> bool {
    compiled() && ARMED.load(Ordering::Relaxed)
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of the 64-bit input.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Should the fault at `point` fire right now? The one call production
/// code makes; everything else in this crate serves it.
#[inline(always)]
pub fn fires(point: FaultPoint) -> bool {
    if !armed() {
        return false;
    }
    fires_slow(point)
}

#[cold]
fn fires_slow(point: FaultPoint) -> bool {
    let st = &POINTS[point as usize];
    let hit = st.hits.fetch_add(1, Ordering::Relaxed); // 0-based hit index
    let fire = match st.mode.load(Ordering::Relaxed) {
        MODE_ALWAYS => true,
        MODE_ONESHOT => hit == 0,
        MODE_NTH => hit + 1 == st.param.load(Ordering::Relaxed),
        MODE_PROB => {
            let p = f64::from_bits(st.param.load(Ordering::Relaxed));
            let h = splitmix64(
                SEED.load(Ordering::Relaxed)
                    ^ (point as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                    ^ hit,
            );
            // Top 53 bits → uniform in [0, 1).
            ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
        }
        _ => false,
    };
    if fire {
        let n = st.fired.fetch_add(1, Ordering::Relaxed);
        let a = splitmix64(
            SEED.load(Ordering::Relaxed).wrapping_add(0x5851_F42D_4C95_7F2D)
                ^ (point as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
                ^ n,
        );
        st.last_aux.store(a, Ordering::Relaxed);
    }
    fire
}

/// Deterministic auxiliary value from the most recent fire at `point`
/// (e.g. which bit to flip, how much of a write to keep). Meaningful
/// only right after [`fires`] returned `true` at the same site.
pub fn aux(point: FaultPoint) -> u64 {
    POINTS[point as usize].last_aux.load(Ordering::Relaxed)
}

/// Times `point` was evaluated while a plan was armed.
pub fn hits(point: FaultPoint) -> u64 {
    POINTS[point as usize].hits.load(Ordering::Relaxed)
}

/// Times `point` actually fired.
pub fn fired(point: FaultPoint) -> u64 {
    POINTS[point as usize].fired.load(Ordering::Relaxed)
}

/// A seeded assignment of triggers to injection points.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    triggers: [Trigger; POINT_COUNT],
}

impl FaultPlan {
    /// An empty plan (all points [`Trigger::Never`]) under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, triggers: [Trigger::Never; POINT_COUNT] }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Set `point`'s trigger (builder style).
    pub fn with(mut self, point: FaultPoint, trigger: Trigger) -> FaultPlan {
        self.triggers[point as usize] = trigger;
        self
    }

    /// The trigger currently assigned to `point`.
    pub fn trigger(&self, point: FaultPoint) -> Trigger {
        self.triggers[point as usize]
    }

    /// Arm this plan process-wide, resetting all per-point counters.
    /// Panics if the `faults` feature is not compiled in — an armed
    /// plan with no compiled sites would silently test nothing.
    pub fn install(&self) {
        assert!(compiled(), "recblock-faults built without the `faults` feature");
        // Disarm while swapping state so sites never see a half-installed plan.
        ARMED.store(false, Ordering::SeqCst);
        SEED.store(self.seed, Ordering::SeqCst);
        for (i, st) in POINTS.iter().enumerate() {
            let (mode, param) = match self.triggers[i] {
                Trigger::Never => (MODE_NEVER, 0),
                Trigger::Always => (MODE_ALWAYS, 0),
                Trigger::OneShot => (MODE_ONESHOT, 0),
                Trigger::Nth(n) => (MODE_NTH, n),
                Trigger::Prob(p) => (MODE_PROB, p.clamp(0.0, 1.0).to_bits()),
            };
            st.mode.store(mode, Ordering::SeqCst);
            st.param.store(param, Ordering::SeqCst);
            st.hits.store(0, Ordering::SeqCst);
            st.fired.store(0, Ordering::SeqCst);
            st.last_aux.store(0, Ordering::SeqCst);
        }
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarm injection process-wide and reset every point to
    /// [`Trigger::Never`]. Hit/fire counters survive until the next
    /// `install`, so a test can disarm first and then inspect them.
    pub fn clear() {
        ARMED.store(false, Ordering::SeqCst);
        for st in &POINTS {
            st.mode.store(MODE_NEVER, Ordering::SeqCst);
            st.param.store(0, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Injection state is process-global; tests serialize on this.
    static LOCK: Mutex<()> = Mutex::new(());

    #[cfg(feature = "faults")]
    #[test]
    fn disarmed_points_never_fire() {
        let _g = LOCK.lock().unwrap();
        FaultPlan::clear();
        for p in ALL_POINTS {
            assert!(!fires(p));
        }
    }

    #[cfg(feature = "faults")]
    #[test]
    fn oneshot_fires_exactly_once() {
        let _g = LOCK.lock().unwrap();
        FaultPlan::new(1).with(FaultPoint::StoreRead, Trigger::OneShot).install();
        assert!(fires(FaultPoint::StoreRead));
        assert!(!fires(FaultPoint::StoreRead));
        assert!(!fires(FaultPoint::StoreRead));
        assert_eq!(fired(FaultPoint::StoreRead), 1);
        assert_eq!(hits(FaultPoint::StoreRead), 3);
        // Unlisted points stay inert.
        assert!(!fires(FaultPoint::NetWrite));
        FaultPlan::clear();
    }

    #[cfg(feature = "faults")]
    #[test]
    fn nth_fires_on_that_hit_only() {
        let _g = LOCK.lock().unwrap();
        FaultPlan::new(2).with(FaultPoint::NetWrite, Trigger::Nth(3)).install();
        assert!(!fires(FaultPoint::NetWrite));
        assert!(!fires(FaultPoint::NetWrite));
        assert!(fires(FaultPoint::NetWrite));
        assert!(!fires(FaultPoint::NetWrite));
        FaultPlan::clear();
    }

    #[cfg(feature = "faults")]
    #[test]
    fn prob_is_seed_deterministic_and_roughly_calibrated() {
        let _g = LOCK.lock().unwrap();
        let run = |seed: u64| -> Vec<bool> {
            FaultPlan::new(seed).with(FaultPoint::ExecChunk, Trigger::Prob(0.25)).install();
            let seq: Vec<bool> = (0..1000).map(|_| fires(FaultPoint::ExecChunk)).collect();
            FaultPlan::clear();
            seq
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce the same fault sequence");
        let c = run(43);
        assert_ne!(a, c, "different seeds should differ");
        let rate = a.iter().filter(|&&f| f).count() as f64 / 1000.0;
        assert!((0.15..=0.35).contains(&rate), "p=0.25 fired at rate {rate}");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn aux_is_stable_per_fire() {
        let _g = LOCK.lock().unwrap();
        FaultPlan::new(7).with(FaultPoint::StoreWrite, Trigger::Always).install();
        assert!(fires(FaultPoint::StoreWrite));
        let a0 = aux(FaultPoint::StoreWrite);
        assert!(fires(FaultPoint::StoreWrite));
        let a1 = aux(FaultPoint::StoreWrite);
        assert_ne!(a0, a1, "each fire draws a fresh auxiliary value");
        FaultPlan::clear();
        // Replaying the same seed replays the same aux sequence.
        FaultPlan::new(7).with(FaultPoint::StoreWrite, Trigger::Always).install();
        assert!(fires(FaultPoint::StoreWrite));
        assert_eq!(aux(FaultPoint::StoreWrite), a0);
        FaultPlan::clear();
    }

    #[cfg(not(feature = "faults"))]
    #[test]
    fn without_the_feature_everything_is_inert() {
        let _g = LOCK.lock().unwrap();
        assert!(!compiled());
        assert!(!armed());
        for p in ALL_POINTS {
            assert!(!fires(p));
        }
    }

    #[test]
    fn point_names_are_unique() {
        let _g = LOCK.lock().unwrap();
        let mut names: Vec<&str> = ALL_POINTS.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), POINT_COUNT);
    }
}
