//! SpTRSV and SpMV kernel zoo for the recblock suite.
//!
//! This crate implements, as real multithreaded CPU code, every kernel the
//! paper's adaptive recursive block algorithm chooses among (Section 3.4):
//!
//! **Four SpTRSV kernels** for triangular (sub-)matrices:
//! * [`sptrsv::parallel_diag`] — "completely parallel": the block is purely
//!   diagonal, every component solves independently;
//! * [`sptrsv::LevelSetSolver`] — the classic Anderson/Saad–Saltz level-set
//!   schedule (Algorithm 2), one parallel sweep per level with a barrier
//!   between levels;
//! * [`sptrsv::SyncFreeSolver`] — the synchronisation-free algorithm of Liu
//!   et al. (Algorithm 3): CSC storage, atomic in-degree counters, atomic
//!   accumulation, busy-waiting — one "kernel launch", no barriers;
//! * [`sptrsv::CusparseLikeSolver`] — a cuSPARSE-csrsv2-style baseline:
//!   a separate (expensive) analysis phase plus a level-scheduled solve that
//!   merges small adjacent levels per launch, after Naumov's report.
//!
//! **Four SpMV kernels** for square/rectangular sub-matrices
//! ([`spmv`]): scalar-CSR, vector-CSR, scalar-DCSR and vector-DCSR, all in
//! the *update* form `y ← y − A·x` that the block algorithms consume.
//!
//! Plus the serial reference ([`sptrsv::serial_csr`]), multi-RHS solves
//! ([`sptrsm`]) and an ILU(0) factorisation ([`ilu`]) used by the
//! preconditioned-iterative-solver example.
//!
//! All steady-state parallelism runs on the [`exec`] execution engine:
//! preplanned nnz-balanced schedules, a persistent allocation-free worker
//! pool, and one deterministic inner reduction ([`exec::row_dot`]) shared by
//! every kernel so results are bit-reproducible across kernels and thread
//! counts.

#![warn(missing_docs)]

pub mod exec;
pub mod ilu;
pub mod krylov;
pub mod spmv;
pub mod sptrsm;
pub mod sptrsv;
pub mod trace;

pub use exec::{
    ExecPool, LevelSchedule, ScheduleMode, SolveWorkspace, SpmvPlan, TaskGraphStats, TaskSchedule,
    TuneParams,
};
pub use sptrsv::{CusparseLikeSolver, LevelSetSolver, SyncFreeSolver};
pub use trace::{EventKind, SolveTrace, TraceEvent};
