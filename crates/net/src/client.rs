//! Minimal blocking RBNET client.
//!
//! One synchronous connection: requests are written whole, responses are
//! read whole. `send_solve`/`recv` split the round trip for pipelining
//! (the loopback tests use this to saturate the server from one thread).

use crate::error::{ErrCode, NetError};
use crate::frame::{self, FrameKind, Header, StatReply, HEADER_LEN};
use recblock_matrix::Scalar;
use recblock_store::PlanKey;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// The outcome of one solve request: solution columns, or the server's
/// typed refusal.
pub type SolveOutcome<S> = Result<Vec<Vec<S>>, (ErrCode, String)>;

/// Blocking client for one RBNET connection.
pub struct NetClient {
    stream: TcpStream,
    buf: Vec<u8>,
    next_tag: u64,
    /// Largest response payload this client will accept.
    pub max_frame_bytes: u32,
}

impl NetClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient { stream, buf: Vec::new(), next_tag: 1, max_frame_bytes: 64 << 20 })
    }

    /// Set a read timeout for responses (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// Read one whole frame; returns its header and leaves the payload in
    /// `self.buf`.
    fn read_frame(&mut self) -> Result<Header, NetError> {
        let mut head = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut head).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => NetError::Closed,
            _ => NetError::Io(e),
        })?;
        let h = frame::decode_header(&head, self.max_frame_bytes)?
            .expect("full header always decodes or errors");
        self.buf.clear();
        self.buf.resize(h.payload_len as usize, 0);
        self.stream.read_exact(&mut self.buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => NetError::Closed,
            _ => NetError::Io(e),
        })?;
        Ok(h)
    }

    /// Send a solve request without waiting; returns the tag to match the
    /// response against.
    pub fn send_solve<S: Scalar>(
        &mut self,
        tenant: &str,
        key: &PlanKey,
        cols: &[&[S]],
        deadline_ms: u32,
    ) -> Result<u64, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_solve(&mut out, tag, tenant, key, deadline_ms, cols);
        self.stream.write_all(&out)?;
        Ok(tag)
    }

    /// Receive the next solve response (any tag): `(tag, outcome)`.
    pub fn recv<S: Scalar>(&mut self) -> Result<(u64, SolveOutcome<S>), NetError> {
        let h = self.read_frame()?;
        match h.kind {
            FrameKind::SolveOk => {
                let ok = frame::parse_solve_ok(&self.buf)?;
                let mut cols = Vec::with_capacity(ok.k as usize);
                for j in 0..ok.k as usize {
                    let mut v = Vec::new();
                    frame::decode_scalars::<S>(ok.col_bytes(j), ok.width, &mut v)?;
                    cols.push(v);
                }
                Ok((h.tag, Ok(cols)))
            }
            FrameKind::Err => {
                let (code, msg) = frame::parse_err(&self.buf)?;
                Ok((h.tag, Err((code, msg.to_string()))))
            }
            _ => Err(NetError::Protocol("expected SolveOk or Err")),
        }
    }

    /// One blocking multi-column solve round trip.
    pub fn solve_multi<S: Scalar>(
        &mut self,
        tenant: &str,
        key: &PlanKey,
        cols: &[&[S]],
        deadline_ms: u32,
    ) -> Result<Vec<Vec<S>>, NetError> {
        let tag = self.send_solve(tenant, key, cols, deadline_ms)?;
        let (rtag, outcome) = self.recv::<S>()?;
        if rtag != tag {
            return Err(NetError::Protocol("response tag does not match request"));
        }
        outcome.map_err(|(code, message)| NetError::Remote { code, message })
    }

    /// One blocking single-RHS solve round trip.
    pub fn solve<S: Scalar>(
        &mut self,
        tenant: &str,
        key: &PlanKey,
        rhs: &[S],
    ) -> Result<Vec<S>, NetError> {
        let mut cols = self.solve_multi(tenant, key, &[rhs], 0)?;
        Ok(cols.pop().expect("k = 1 response has one column"))
    }

    /// Round-trip liveness probe; returns the measured latency.
    pub fn ping(&mut self) -> Result<Duration, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_header(&mut out, FrameKind::Ping, tag, 0);
        let t0 = Instant::now();
        self.stream.write_all(&out)?;
        let h = self.read_frame()?;
        if h.kind != FrameKind::Pong || h.tag != tag {
            return Err(NetError::Protocol("expected matching Pong"));
        }
        Ok(t0.elapsed())
    }

    /// Fetch server status: warm plans, in-flight work, per-tenant queues.
    pub fn stat(&mut self) -> Result<StatReply, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_header(&mut out, FrameKind::Stat, tag, 0);
        self.stream.write_all(&out)?;
        let h = self.read_frame()?;
        if h.kind != FrameKind::StatOk || h.tag != tag {
            return Err(NetError::Protocol("expected matching StatOk"));
        }
        Ok(frame::parse_stat_reply(&self.buf)?)
    }

    /// The raw stream, for tests that need to misbehave (partial writes,
    /// abrupt shutdowns).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
