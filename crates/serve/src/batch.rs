//! Bounded request queue with per-matrix coalescing.
//!
//! Requests for the same plan land in one per-matrix queue; a round-robin
//! ready list hands matrices to workers, and each worker drains up to
//! `max_batch` right-hand sides from its matrix in one go — that drained
//! slice becomes a single multi-RHS solve. The global bound counts
//! individual right-hand sides: when it is reached, `try_push` fails fast
//! with [`ServeError::Overloaded`] and `push_blocking` parks the caller
//! until a worker frees space.
//!
//! Drained per-matrix deques are recycled through a small spare pool so a
//! steady stream of same-matrix requests enqueues without heap traffic —
//! the property the network front end's zero-allocation event loop relies
//! on.

use crate::cache::PlanKey;
use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::ResponseSink;
use recblock::RecBlockSolver;
use recblock_matrix::Scalar;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Drained deques kept for reuse; bounds the idle memory the pool pins.
const SPARE_QUEUES: usize = 16;

/// Where one request's answer goes: a per-request channel (the in-process
/// [`crate::SolveHandle`] path) or a shared routed sink (the transport
/// path, which multiplexes many requests over one delivery object and
/// tells them apart by tag).
pub(crate) enum Reply<S> {
    Channel(mpsc::Sender<Result<Vec<S>, ServeError>>),
    Routed { tag: u64, sink: Arc<dyn ResponseSink<S>> },
}

impl<S> Reply<S> {
    pub(crate) fn deliver(self, result: Result<Vec<S>, ServeError>) {
        match self {
            // A dropped handle is fine — the requester stopped listening.
            Reply::Channel(tx) => drop(tx.send(result)),
            Reply::Routed { tag, sink } => sink.deliver(tag, result),
        }
    }
}

/// One accepted right-hand side awaiting solution.
pub(crate) struct Pending<S> {
    pub rhs: Vec<S>,
    pub reply: Reply<S>,
    pub submitted: Instant,
}

/// What a worker takes in one drain: a plan and 1..=max_batch requests.
pub(crate) struct Batch<S> {
    pub plan: Arc<RecBlockSolver<S>>,
    pub requests: Vec<Pending<S>>,
}

struct MatrixQueue<S> {
    plan: Arc<RecBlockSolver<S>>,
    pending: VecDeque<Pending<S>>,
}

struct Inner<S> {
    queues: HashMap<PlanKey, MatrixQueue<S>>,
    /// Keys with non-empty queues, each present at most once; popped
    /// round-robin so no matrix starves.
    ready: VecDeque<PlanKey>,
    /// Drained deques (empty, capacity retained) awaiting reuse, so the
    /// submit path stays allocation-free in steady state.
    spare: Vec<VecDeque<Pending<S>>>,
    depth: usize,
    shutting_down: bool,
}

pub(crate) struct BatchQueue<S> {
    inner: Mutex<Inner<S>>,
    /// Workers wait here for work (or shutdown).
    work_cv: Condvar,
    /// Blocking submitters wait here for space.
    space_cv: Condvar,
    capacity: usize,
    metrics: Arc<Metrics>,
}

impl<S: Scalar> BatchQueue<S> {
    pub(crate) fn new(capacity: usize, metrics: Arc<Metrics>) -> Self {
        BatchQueue {
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                ready: VecDeque::new(),
                spare: Vec::new(),
                depth: 0,
                shutting_down: false,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity,
            metrics,
        }
    }

    /// Enqueue without blocking; `Overloaded` when the bound is hit.
    pub(crate) fn try_push(
        &self,
        key: PlanKey,
        plan: &Arc<RecBlockSolver<S>>,
        req: Pending<S>,
    ) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if inner.depth >= self.capacity {
            self.metrics.rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(ServeError::Overloaded { depth: inner.depth, capacity: self.capacity });
        }
        self.enqueue(&mut inner, key, plan, req);
        Ok(())
    }

    /// Enqueue, parking the caller while the queue is full.
    pub(crate) fn push_blocking(
        &self,
        key: PlanKey,
        plan: &Arc<RecBlockSolver<S>>,
        req: Pending<S>,
    ) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap();
        while inner.depth >= self.capacity && !inner.shutting_down {
            inner = self.space_cv.wait(inner).unwrap();
        }
        if inner.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        self.enqueue(&mut inner, key, plan, req);
        Ok(())
    }

    fn enqueue(
        &self,
        inner: &mut Inner<S>,
        key: PlanKey,
        plan: &Arc<RecBlockSolver<S>>,
        req: Pending<S>,
    ) {
        let Inner { queues, ready, spare, depth, .. } = inner;
        let queue = match queues.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                // Reuse a drained deque (capacity retained) when one is
                // spare — no allocation for repeat-matrix traffic.
                let pending = spare.pop().unwrap_or_default();
                v.insert(MatrixQueue { plan: plan.clone(), pending })
            }
        };
        let was_empty = queue.pending.is_empty();
        queue.pending.push_back(req);
        if was_empty {
            ready.push_back(key);
        }
        *depth += 1;
        let depth_now = *depth;
        self.metrics.submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.metrics.queue_depth_changed(depth_now);
        self.work_cv.notify_one();
    }

    /// Next batch for a worker. Blocks while the queue is empty; returns
    /// `None` only at shutdown **after** everything queued has been handed
    /// out — that is the graceful-drain guarantee.
    pub(crate) fn next_batch(&self, max_batch: usize) -> Option<Batch<S>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(key) = inner.ready.pop_front() {
                let (batch, exhausted) = {
                    let queue = inner.queues.get_mut(&key).expect("ready key has a queue");
                    let take = queue.pending.len().min(max_batch.max(1));
                    let requests: Vec<Pending<S>> = queue.pending.drain(..take).collect();
                    (Batch { plan: queue.plan.clone(), requests }, queue.pending.is_empty())
                };
                if exhausted {
                    // Retire the per-matrix queue, pooling its deque for the
                    // next enqueue; the plan stays alive in the cache (and in
                    // the batch being solved).
                    if let Some(q) = inner.queues.remove(&key) {
                        if inner.spare.len() < SPARE_QUEUES {
                            inner.spare.push(q.pending);
                        }
                    }
                } else {
                    inner.ready.push_back(key);
                }
                inner.depth -= batch.requests.len();
                self.metrics.queue_depth_changed(inner.depth);
                self.space_cv.notify_all();
                return Some(batch);
            }
            if inner.shutting_down {
                return None;
            }
            inner = self.work_cv.wait(inner).unwrap();
        }
    }

    /// Flip into shutdown: submitters are refused from now on, workers keep
    /// draining until the queue is empty.
    pub(crate) fn begin_shutdown(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.shutting_down = true;
        drop(inner);
        self.work_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Cancel whatever is still queued (only possible when no workers are
    /// draining, e.g. a zero-worker service). Each pending request receives
    /// [`ServeError::ShuttingDown`].
    pub(crate) fn cancel_remaining(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.ready.clear();
        let queues = std::mem::take(&mut inner.queues);
        inner.depth = 0;
        self.metrics.queue_depth_changed(0);
        drop(inner);
        for (_, q) in queues {
            for req in q.pending {
                self.metrics.cancelled.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                req.reply.deliver(Err(ServeError::ShuttingDown));
            }
        }
    }

    /// Queued right-hand sides right now.
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().unwrap().depth
    }

    /// Right-hand sides the queue can still accept before `try_push`
    /// reports [`ServeError::Overloaded`]. Advisory under concurrency.
    pub(crate) fn available(&self) -> usize {
        self.capacity.saturating_sub(self.inner.lock().unwrap().depth)
    }
}
