//! Packed execution-order storage — the faithful Figure 3(d) layout.
//!
//! The paper stores the whole blocked matrix in **three contiguous
//! arrays**: triangular parts in CSC (diagonal handled separately), square
//! parts transposed into CSR, hyper-sparse squares doubly compressed into
//! DCSR, all concatenated in execution order so the solve phase streams one
//! arena front to back. [`PackedBlocked`] reproduces that layout exactly —
//! one pointer array, one index array, one value array, plus a small
//! descriptor table — and executes the solve as a single loop of
//! slice-level kernels over the arena.
//!
//! [`crate::blocked::BlockedTri`] remains the *performance* representation
//! (per-block structs so each block can carry its preprocessed parallel
//! solver); `PackedBlocked` is the *storage* representation, used to
//! measure the format's memory footprint and to validate the layout
//! round-trips. Both solve identically (tests cross-check them).

use crate::partition::{self, PlanNode};
use recblock_matrix::permute::Permutation;
use recblock_matrix::{Csr, MatrixError, Scalar};
use std::ops::Range;

/// How one block is laid out inside the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedShape {
    /// Triangular block in CSC, diagonal stored separately in `diag`.
    TriCsc,
    /// Square block in CSR.
    SquareCsr,
    /// Square block in DCSR (pointer array covers only non-empty rows,
    /// whose original indices live in `aux`).
    SquareDcsr,
}

/// Descriptor of one block: where it sits in the matrix and in the arena.
#[derive(Debug, Clone)]
pub struct PackedBlock {
    /// Storage shape.
    pub shape: PackedShape,
    /// Row range in the reordered matrix.
    pub rows: Range<usize>,
    /// Column range in the reordered matrix.
    pub cols: Range<usize>,
    /// Slice of the shared pointer array (`len = lanes + 1`).
    ptr: Range<usize>,
    /// Slice of the shared index/value arrays.
    data: Range<usize>,
    /// Slice of the auxiliary array (DCSR row ids; empty otherwise).
    aux: Range<usize>,
}

/// Options for the packed build.
#[derive(Debug, Clone)]
pub struct PackedOptions {
    /// Recursion depth (`2^depth` leaves).
    pub depth: usize,
    /// Apply the recursive level-set reordering first.
    pub reorder: bool,
    /// Squares with at least this fraction of empty rows are stored DCSR
    /// (the paper's hyper-sparse case).
    pub dcsr_empty_ratio: f64,
}

impl Default for PackedOptions {
    fn default() -> Self {
        PackedOptions { depth: 3, reorder: true, dcsr_empty_ratio: 0.5 }
    }
}

/// The packed blocked matrix: three shared arrays plus descriptors.
#[derive(Debug, Clone)]
pub struct PackedBlocked<S> {
    n: usize,
    nnz: usize,
    depth: usize,
    perm: Permutation,
    /// Per-component diagonal values (stored separately, as in Figure 3(d)).
    diag: Vec<S>,
    /// Concatenated pointer arrays of every block.
    ptr: Vec<usize>,
    /// Concatenated index arrays (CSC row indices / CSR column indices),
    /// block-local.
    idx: Vec<usize>,
    /// Concatenated value arrays.
    vals: Vec<S>,
    /// DCSR non-empty-row indices, block-local.
    aux: Vec<usize>,
    /// Block descriptors in execution order.
    blocks: Vec<PackedBlock>,
}

impl<S: Scalar> PackedBlocked<S> {
    /// Build the packed representation of a solvable lower-triangular
    /// matrix.
    pub fn build(l: &Csr<S>, opts: &PackedOptions) -> Result<Self, MatrixError> {
        recblock_matrix::triangular::check_solvable_lower(l)?;
        let n = l.nrows();
        let (matrix, perm) = if opts.reorder {
            crate::reorder::recursive_levelset_reorder(l, opts.depth)?
        } else {
            (l.clone(), Permutation::identity(n))
        };
        let mut packed = PackedBlocked {
            n,
            nnz: l.nnz(),
            depth: opts.depth,
            perm,
            diag: vec![S::ZERO; n],
            ptr: Vec::new(),
            idx: Vec::with_capacity(l.nnz()),
            vals: Vec::with_capacity(l.nnz()),
            aux: Vec::new(),
            blocks: Vec::new(),
        };
        for i in 0..n {
            packed.diag[i] = matrix.get(i, i).ok_or(MatrixError::SingularDiagonal { row: i })?;
        }
        for node in partition::recursive_plan(n, opts.depth) {
            match node {
                PlanNode::Tri { rows } => packed.push_tri(&matrix, rows),
                PlanNode::Square { rows, cols } => {
                    packed.push_square(&matrix, rows, cols, opts.dcsr_empty_ratio)
                }
            }
        }
        debug_assert_eq!(packed.vals.len() + n, l.nnz());
        Ok(packed)
    }

    /// Append a triangular block in CSC, diagonal excluded.
    fn push_tri(&mut self, m: &Csr<S>, rows: Range<usize>) {
        let sub = m.submatrix(rows.clone(), rows.clone());
        let csc = sub.to_csc();
        let w = rows.len();
        let ptr_start = self.ptr.len();
        let data_start = self.idx.len();
        // Strip the diagonal (first entry of each column) while packing.
        let mut running = 0usize;
        self.ptr.push(0);
        for j in 0..w {
            let (r, v) = csc.col(j);
            for k in 0..r.len() {
                if r[k] == j {
                    continue; // diagonal lives in `diag`
                }
                self.idx.push(r[k]);
                self.vals.push(v[k]);
                running += 1;
            }
            self.ptr.push(running);
        }
        self.blocks.push(PackedBlock {
            shape: PackedShape::TriCsc,
            rows: rows.clone(),
            cols: rows,
            ptr: ptr_start..self.ptr.len(),
            data: data_start..self.idx.len(),
            aux: 0..0,
        });
    }

    /// Append a square block in CSR, or DCSR when hyper-sparse.
    fn push_square(
        &mut self,
        m: &Csr<S>,
        rows: Range<usize>,
        cols: Range<usize>,
        dcsr_threshold: f64,
    ) {
        let sub = m.submatrix(rows.clone(), cols.clone());
        let empty = sub.empty_rows() as f64 / sub.nrows().max(1) as f64;
        let ptr_start = self.ptr.len();
        let data_start = self.idx.len();
        let aux_start = self.aux.len();
        let shape = if empty > dcsr_threshold {
            // DCSR: only non-empty rows get a pointer slot.
            let mut running = 0usize;
            self.ptr.push(0);
            for i in 0..sub.nrows() {
                let (c, v) = sub.row(i);
                if c.is_empty() {
                    continue;
                }
                self.aux.push(i);
                self.idx.extend_from_slice(c);
                self.vals.extend_from_slice(v);
                running += c.len();
                self.ptr.push(running);
            }
            PackedShape::SquareDcsr
        } else {
            let mut running = 0usize;
            self.ptr.push(0);
            for i in 0..sub.nrows() {
                let (c, v) = sub.row(i);
                self.idx.extend_from_slice(c);
                self.vals.extend_from_slice(v);
                running += c.len();
                self.ptr.push(running);
            }
            PackedShape::SquareCsr
        };
        self.blocks.push(PackedBlock {
            shape,
            rows,
            cols,
            ptr: ptr_start..self.ptr.len(),
            data: data_start..self.idx.len(),
            aux: aux_start..self.aux.len(),
        });
    }

    /// Rows of the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzeros of the original matrix (diagonal included).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Recursion depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Block descriptors in execution order.
    pub fn blocks(&self) -> &[PackedBlock] {
        &self.blocks
    }

    /// Total bytes of the arena (the paper's memory argument: one pointer
    /// array, one index array, one value array, the separate diagonal and
    /// the DCSR aux indices).
    pub fn bytes(&self) -> usize {
        (self.ptr.len() + self.idx.len() + self.aux.len()) * std::mem::size_of::<usize>()
            + (self.vals.len() + self.diag.len()) * S::BYTES
    }

    /// Solve `L x = b` by streaming the arena front to back.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                what: "packed rhs",
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut work = self.perm.gather(b);
        let mut x = vec![S::ZERO; self.n];
        for blk in &self.blocks {
            let ptr = &self.ptr[blk.ptr.clone()];
            let idx = &self.idx[blk.data.clone()];
            let vals = &self.vals[blk.data.clone()];
            match blk.shape {
                PackedShape::TriCsc => {
                    // Column-sweep forward substitution over the slice; the
                    // diagonal comes from the shared diag array.
                    let base = blk.rows.start;
                    for j in 0..blk.rows.len() {
                        let xj = work[base + j] / self.diag[base + j];
                        x[base + j] = xj;
                        for k in ptr[j]..ptr[j + 1] {
                            let upd = vals[k] * xj;
                            work[base + idx[k]] -= upd;
                        }
                    }
                }
                PackedShape::SquareCsr => {
                    let (rb, cb) = (blk.rows.start, blk.cols.start);
                    for i in 0..blk.rows.len() {
                        let mut acc = S::ZERO;
                        for k in ptr[i]..ptr[i + 1] {
                            acc += vals[k] * x[cb + idx[k]];
                        }
                        work[rb + i] -= acc;
                    }
                }
                PackedShape::SquareDcsr => {
                    let (rb, cb) = (blk.rows.start, blk.cols.start);
                    let aux = &self.aux[blk.aux.clone()];
                    for (lane, &i) in aux.iter().enumerate() {
                        let mut acc = S::ZERO;
                        for k in ptr[lane]..ptr[lane + 1] {
                            acc += vals[k] * x[cb + idx[k]];
                        }
                        work[rb + i] -= acc;
                    }
                }
            }
        }
        Ok(self.perm.scatter(&x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::{BlockedOptions, BlockedTri, DepthRule};
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn opts(depth: usize) -> PackedOptions {
        PackedOptions { depth, ..PackedOptions::default() }
    }

    fn check(l: Csr<f64>, depth: usize) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 31) as f64) - 15.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let p = PackedBlocked::build(&l, &opts(depth)).unwrap();
        let x = p.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-10, "depth={depth}");
    }

    #[test]
    fn matches_serial_various_depths() {
        let l = generate::random_lower::<f64>(500, 4.0, 91);
        for depth in 0..5usize {
            check(l.clone(), depth);
        }
    }

    #[test]
    fn matches_serial_on_structures() {
        check(generate::chain::<f64>(300, 92), 3);
        check(generate::grid2d::<f64>(20, 20, 93), 3);
        check(generate::kkt_like::<f64>(800, 300, 3, 94), 3);
        check(generate::hub_power_law::<f64>(600, 5, 2, 30, 95), 3);
        check(generate::diagonal::<f64>(200, 96), 2);
    }

    #[test]
    fn agrees_with_blocked_tri() {
        let l = generate::layered::<f64>(700, 11, 2.0, generate::LayerShape::Uniform, 97);
        let b: Vec<f64> = (0..700).map(|i| (i as f64 * 0.01).sin()).collect();
        let packed = PackedBlocked::build(&l, &opts(3)).unwrap();
        let blocked = BlockedTri::build(
            &l,
            &BlockedOptions { depth: DepthRule::Fixed(3), ..BlockedOptions::default() },
        )
        .unwrap();
        let xp = packed.solve(&b).unwrap();
        let xb = blocked.solve(&b).unwrap();
        assert!(max_rel_diff(&xp, &xb) < 1e-10);
    }

    #[test]
    fn arena_conserves_nonzeros() {
        let l = generate::random_lower::<f64>(400, 5.0, 98);
        let p = PackedBlocked::build(&l, &opts(3)).unwrap();
        // diag + off-diagonal values = original nnz.
        assert_eq!(p.nnz(), l.nnz());
        assert_eq!(p.blocks().len(), (1 << 4) - 1);
    }

    #[test]
    fn hypersparse_squares_use_dcsr() {
        // Hub structure leaves most square rows empty at deep levels.
        let l = generate::hub_power_law::<f64>(800, 4, 1, 0, 99);
        let p = PackedBlocked::build(&l, &opts(3)).unwrap();
        let dcsr_count = p.blocks().iter().filter(|b| b.shape == PackedShape::SquareDcsr).count();
        assert!(dcsr_count > 0, "expected DCSR squares");
    }

    #[test]
    fn dcsr_saves_memory_on_hypersparse() {
        let l = generate::hub_power_law::<f64>(3000, 4, 1, 0, 100);
        let with_dcsr = PackedBlocked::build(&l, &opts(4)).unwrap();
        let without = PackedBlocked::build(
            &l,
            &PackedOptions { depth: 4, reorder: true, dcsr_empty_ratio: 1.1 },
        )
        .unwrap();
        assert!(
            with_dcsr.bytes() < without.bytes(),
            "dcsr {} vs csr {}",
            with_dcsr.bytes(),
            without.bytes()
        );
    }

    #[test]
    fn no_reorder_still_correct() {
        let l = generate::grid2d::<f64>(15, 15, 101);
        let o = PackedOptions { reorder: false, ..opts(2) };
        let p = PackedBlocked::build(&l, &o).unwrap();
        let b = vec![1.0; 225];
        let x = p.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &serial_csr(&l, &b).unwrap()) < 1e-10);
    }

    #[test]
    fn rejects_bad_inputs() {
        let l = generate::random_lower::<f64>(50, 3.0, 102);
        let p = PackedBlocked::build(&l, &opts(2)).unwrap();
        assert!(p.solve(&[1.0; 49]).is_err());
        let bad =
            Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1., 1., 1.]).unwrap();
        assert!(PackedBlocked::build(&bad, &opts(1)).is_err());
    }

    #[test]
    fn f32_packed_solve() {
        let l = generate::banded::<f32>(300, 4, 0.6, 103);
        let p = PackedBlocked::build(&l, &opts(2)).unwrap();
        let b = vec![1.0f32; 300];
        let x = p.solve(&b).unwrap();
        let r = recblock_matrix::vector::residual_inf(&l, &x, &b).unwrap();
        assert!(r < 1e-4);
    }
}
