//! Sparse triangular solve kernels (`L x = b`, `L` lower triangular).

mod cusparse_like;
mod levelset;
mod parallel_diag;
mod serial;
mod syncfree;
mod syncfree_csr;

pub use cusparse_like::CusparseLikeSolver;
pub use levelset::LevelSetSolver;
pub use parallel_diag::{is_diagonal_only, parallel_diag, parallel_diag_into};
pub use serial::{serial_csc, serial_csr};
pub use syncfree::SyncFreeSolver;
pub use syncfree_csr::SyncFreeCsrSolver;

/// Default worker count shared by the sync-free variants.
pub(crate) fn syncfree_default_threads() -> usize {
    syncfree::default_threads()
}
