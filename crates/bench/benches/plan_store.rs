//! Plan persistence economics: is loading a serialized plan actually
//! cheaper than rebuilding it? The store only earns its keep if
//! `decode_plan` beats `BlockedTri::build` by a wide margin — the
//! acceptance bar is ≥5× on this corpus.
//!
//! Three criterion groups per matrix: `build/<name>` (full preprocessing),
//! `encode/<name>` (serialize to bytes), `load/<name>` (decode bytes back
//! into a ready solver). A summary table of measured build-vs-load
//! speedups is printed at the end.

use criterion::{criterion_group, criterion_main, Criterion};
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock_matrix::{generate, Csr};
use recblock_store::{decode_plan, encode_plan, PlanKey};
use std::time::{Duration, Instant};

fn corpus() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        (
            "layered_30k",
            generate::layered::<f64>(30_000, 25, 3.0, generate::LayerShape::Uniform, 9),
        ),
        ("kkt_40k", generate::kkt_like::<f64>(40_000, 4_000, 6, 11)),
        ("grid_160x160", generate::grid2d::<f64>(160, 160, 13)),
    ]
}

fn opts() -> BlockedOptions {
    BlockedOptions { depth: DepthRule::Fixed(4), ..BlockedOptions::default() }
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_store");
    g.measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);

    let mut summary = Vec::new();
    for (name, l) in corpus() {
        let opts = opts();
        let key = PlanKey::of(&l);
        let plan = BlockedTri::build(&l, &opts).unwrap();
        let bytes = encode_plan(&plan, &key, 0.0);

        g.bench_function(format!("build/{name}"), |bench| {
            bench.iter(|| BlockedTri::build(&l, &opts).unwrap())
        });
        g.bench_function(format!("encode/{name}"), |bench| {
            bench.iter(|| encode_plan(&plan, &key, 0.0))
        });
        g.bench_function(format!("load/{name}"), |bench| {
            bench.iter(|| decode_plan::<f64>(&bytes).unwrap())
        });

        // Direct speedup measurement for the acceptance criterion: median
        // of a handful of timed runs each, independent of criterion's
        // reporting format.
        let build_s = median_secs(5, || {
            BlockedTri::build(&l, &opts).unwrap();
        });
        let load_s = median_secs(9, || {
            decode_plan::<f64>(&bytes).unwrap();
        });
        summary.push((name, build_s, load_s, bytes.len()));
    }
    g.finish();

    println!("\nplan_store: load vs rebuild (median wall-clock)");
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>12}",
        "matrix", "build", "load", "speedup", "file size"
    );
    for (name, build_s, load_s, size) in summary {
        println!(
            "{:<14} {:>9.2} ms {:>9.2} ms {:>8.1}x {:>10} B",
            name,
            build_s * 1e3,
            load_s * 1e3,
            build_s / load_s,
            size
        );
    }
}

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
