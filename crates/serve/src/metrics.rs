//! Built-in service metrics.
//!
//! Everything is lock-free atomics so the hot path (submit, batch drain,
//! solve completion) never serialises on a metrics mutex. A
//! [`MetricsSnapshot`] is a consistent-enough point-in-time copy — counters
//! are read individually, so cross-counter invariants (e.g. `submitted ==
//! completed + rejected + in flight`) hold only at quiescence.

use crate::health::Health;
use recblock_store::PlanKey;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Exact batch sizes are tracked up to this; larger batches land in the
/// final overflow bucket.
pub const BATCH_BUCKETS: usize = 33;
/// Log₂ nanosecond buckets for solve latency: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` ns, with the last bucket open-ended (≥ ~9.2 s).
pub const LATENCY_BUCKETS: usize = 34;

/// Upper bound (exclusive, in ns) of log₂ latency bucket `i`. The final
/// bucket is open-ended, so its bound is reported as `u64::MAX`.
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= LATENCY_BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// Request life-cycle stages timed into per-stage log₂ histograms. Each
/// completed request contributes one sample per stage it passed through
/// (a cache hit never records a `StoreLoad`; a failed store load still
/// does, so the fallback path is visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Accepted into the queue → drained by a worker.
    QueueWait = 0,
    /// Plan resolution in `submit` (cache lookup, possibly including a
    /// store load or a full build on miss).
    CacheLookup = 1,
    /// One plan-store load attempt (read + verify + decode), successful
    /// or not.
    StoreLoad = 2,
    /// Gathering a drained batch's right-hand sides into the fused
    /// multi-RHS input block.
    BatchAssembly = 3,
    /// The solve itself (single- or multi-RHS).
    Solve = 4,
    /// Delivering one result to its requester.
    Respond = 5,
}

impl Stage {
    /// Number of stages (array dimension).
    pub const COUNT: usize = 6;
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::CacheLookup,
        Stage::StoreLoad,
        Stage::BatchAssembly,
        Stage::Solve,
        Stage::Respond,
    ];

    /// Snake-case display name (also the Prometheus `stage` label value).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::StoreLoad => "store_load",
            Stage::BatchAssembly => "batch_assembly",
            Stage::Solve => "solve",
            Stage::Respond => "respond",
        }
    }
}

/// Per-tenant counter slice, registered through [`Metrics::tenant`].
///
/// The network front end's admission/QoS layer increments these directly
/// (they are plain atomics, safe from any thread); the service folds them
/// into [`MetricsSnapshot::tenants`] and the Prometheus exposition with a
/// `tenant` label. All counters are monotonic except `queue_depth`, which
/// is a gauge of the tenant's requests queued ahead of dispatch.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests that passed admission and were queued for dispatch.
    pub admitted: AtomicU64,
    /// Requests refused by token-bucket rate admission.
    pub admission_rejected: AtomicU64,
    /// Requests shed because the tenant's queued cost budget was exceeded.
    pub shed_by_cost: AtomicU64,
    /// Requests shed because their deadline expired before dispatch.
    pub shed_by_deadline: AtomicU64,
    /// Requests answered with a solution.
    pub completed: AtomicU64,
    /// Requests answered with a solve/service error after admission.
    pub failed: AtomicU64,
    /// Total admitted cost (`nnz × rhs count` summed over admitted requests).
    pub admitted_cost: AtomicU64,
    /// Requests currently queued ahead of dispatch (gauge).
    pub queue_depth: AtomicU64,
}

impl TenantCounters {
    fn snapshot(&self, tenant: &str) -> TenantSnapshot {
        TenantSnapshot {
            tenant: tenant.to_string(),
            admitted: self.admitted.load(Relaxed),
            admission_rejected: self.admission_rejected.load(Relaxed),
            shed_by_cost: self.shed_by_cost.load(Relaxed),
            shed_by_deadline: self.shed_by_deadline.load(Relaxed),
            completed: self.completed.load(Relaxed),
            failed: self.failed.load(Relaxed),
            admitted_cost: self.admitted_cost.load(Relaxed),
            queue_depth: self.queue_depth.load(Relaxed),
        }
    }
}

/// Point-in-time copy of one tenant's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant name (the Prometheus `tenant` label value).
    pub tenant: String,
    /// See [`TenantCounters::admitted`].
    pub admitted: u64,
    /// See [`TenantCounters::admission_rejected`].
    pub admission_rejected: u64,
    /// See [`TenantCounters::shed_by_cost`].
    pub shed_by_cost: u64,
    /// See [`TenantCounters::shed_by_deadline`].
    pub shed_by_deadline: u64,
    /// See [`TenantCounters::completed`].
    pub completed: u64,
    /// See [`TenantCounters::failed`].
    pub failed: u64,
    /// See [`TenantCounters::admitted_cost`].
    pub admitted_cost: u64,
    /// See [`TenantCounters::queue_depth`].
    pub queue_depth: u64,
}

/// Most recent request hops kept for `planctl trace`; older hops fall off
/// the front. Bounded so a busy node's trace log never grows without limit.
pub const TRACE_LOG_CAP: usize = 1024;

/// One node's record of answering (or proxying) a traced solve request:
/// which trace id it belonged to, which plan it hit, how long the solve
/// span (admission → completion, queueing included) and the respond span
/// (encoding + flushing the answer) took, and whether this node forwarded
/// the request to the owning node rather than solving locally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHop {
    /// Trace id minted at admission on the first node; identical on every
    /// hop of the same request.
    pub trace_id: u64,
    /// Fingerprint of the plan the request addressed.
    pub key: PlanKey,
    /// Name of the node that recorded the hop.
    pub node: String,
    /// Tenant the request arrived under.
    pub tenant: String,
    /// Right-hand sides in the request.
    pub k: u16,
    /// Admission → last column completed, in nanoseconds (serve-tier
    /// queueing and batching included — this is the span a caller waits).
    pub solve_ns: u64,
    /// Encoding and flushing the response frames, in nanoseconds.
    pub respond_ns: u64,
    /// Full admission → response-flushed span, in nanoseconds.
    pub total_ns: u64,
    /// `true` when this node proxied the request onward instead of
    /// solving it locally (the solve span then covers the remote hop).
    pub proxied: bool,
}

/// Published canary-tuning progress for one plan fingerprint. The serve
/// tier's canary scheduler updates this as it works through the candidate
/// grid off the critical path; `planctl` and the Prometheus exposition
/// read it to watch convergence.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneState {
    /// Fingerprint of the plan being tuned.
    pub key: PlanKey,
    /// Times a tuned plan was installed for this fingerprint (0 while the
    /// incumbent still holds its seat).
    pub generation: u64,
    /// Candidates measured so far.
    pub tried: u32,
    /// Candidates in this plan's grid.
    pub total: u32,
    /// `true` once every candidate has been measured and the verdict is in.
    pub done: bool,
    /// Name of the winning candidate, when one cleared the margin.
    pub winner: Option<String>,
    /// Fractional improvement of the winner over the incumbent (0 while
    /// undecided or when the incumbent kept its seat).
    pub gain: f64,
}

/// Shared atomic counters. One instance lives behind an `Arc` shared by the
/// cache, the queue, the workers and the service front end.
#[derive(Debug)]
pub struct Metrics {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cancelled: AtomicU64,

    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) cache_evictions: AtomicU64,
    pub(crate) plan_builds: AtomicU64,
    pub(crate) preprocess_ns: AtomicU64,
    pub(crate) preprocess_saved_ns: AtomicU64,

    pub(crate) store_hits: AtomicU64,
    pub(crate) store_misses: AtomicU64,
    pub(crate) store_errors: AtomicU64,
    pub(crate) store_writes: AtomicU64,
    pub(crate) store_bytes_read: AtomicU64,
    pub(crate) store_load_ns: AtomicU64,

    pub(crate) worker_panics: AtomicU64,
    pub(crate) store_quarantined: AtomicU64,
    pub(crate) draining: AtomicBool,

    // Cluster counters, incremented by the net/cluster tiers through the
    // shared `Arc<Metrics>` (hence `pub`): requests proxied to the owning
    // node, `Redirect` answers sent, proxy hops that failed, and warm
    // `.rbplan` migrations in each direction. `cluster_ring_epoch` and
    // `cluster_members` are gauges of the last applied ring view.
    /// Solve requests this node forwarded to the owning node.
    pub cluster_proxied: AtomicU64,
    /// Solve requests answered with a `Redirect` to the owner.
    pub cluster_redirects: AtomicU64,
    /// Proxy hops that failed (owner unreachable or answered an error).
    pub cluster_proxy_errors: AtomicU64,
    /// Plans pushed to peers (warm migrations out).
    pub cluster_plans_pushed: AtomicU64,
    /// Plans received from peers and imported (warm migrations in).
    pub cluster_plans_received: AtomicU64,
    /// Plan-pull requests this node answered with plan bytes.
    pub cluster_plans_served: AtomicU64,
    /// Epoch of the most recently applied ring view (gauge).
    pub cluster_ring_epoch: AtomicU64,
    /// Members in the most recently applied ring view (gauge).
    pub cluster_members: AtomicU64,

    // Canary-tuning counters, incremented by the serve tier's background
    // tuner (and, for write-back retries, the store persister). `pub` like
    // the cluster counters so sibling tiers can bump them directly.
    /// Times a tuned plan replaced an incumbent (cluster-wide convergence
    /// watches this stabilise).
    pub tune_generation: AtomicU64,
    /// Candidate tunings measured by the canary scheduler.
    pub tune_candidates_tried: AtomicU64,
    /// Winning tunings installed into the cache and queued for write-back.
    pub tune_winners_installed: AtomicU64,
    /// Store write-back attempts retried after an I/O error.
    pub tune_write_back_retries: AtomicU64,
    /// Traced requests whose hop records were kept (monotonic, unlike the
    /// bounded hop log itself).
    pub traced_requests: AtomicU64,

    /// Per-fingerprint canary progress, published by the tuner.
    pub(crate) tune_states: Mutex<Vec<TuneState>>,
    /// Bounded log of recent traced-request hops (newest at the back).
    pub(crate) trace_log: Mutex<VecDeque<TraceHop>>,

    pub(crate) batches: AtomicU64,
    pub(crate) multi_column_batches: AtomicU64,
    pub(crate) batched_columns: AtomicU64,
    pub(crate) batch_hist: [AtomicU64; BATCH_BUCKETS],

    pub(crate) latency_hist: [AtomicU64; LATENCY_BUCKETS],
    pub(crate) latency_ns_sum: AtomicU64,
    pub(crate) latency_count: AtomicU64,

    pub(crate) stage_hist: [[AtomicU64; LATENCY_BUCKETS]; Stage::COUNT],
    pub(crate) stage_ns_sum: [AtomicU64; Stage::COUNT],
    pub(crate) stage_count: [AtomicU64; Stage::COUNT],

    pub(crate) queue_depth: AtomicUsize,
    pub(crate) queue_depth_peak: AtomicUsize,

    /// Registered tenants, in registration order. Registration is rare
    /// (once per tenant) and lookups return an `Arc` the caller keeps, so
    /// a mutex-guarded list is fine — the hot path never touches it.
    pub(crate) tenants: Mutex<Vec<(Arc<str>, Arc<TenantCounters>)>>,
}

impl Default for Metrics {
    fn default() -> Self {
        // `[AtomicU64; N]: Default` stops at N = 32, so spell it out.
        Metrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            plan_builds: AtomicU64::new(0),
            preprocess_ns: AtomicU64::new(0),
            preprocess_saved_ns: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
            store_writes: AtomicU64::new(0),
            store_bytes_read: AtomicU64::new(0),
            store_load_ns: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            store_quarantined: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            cluster_proxied: AtomicU64::new(0),
            cluster_redirects: AtomicU64::new(0),
            cluster_proxy_errors: AtomicU64::new(0),
            cluster_plans_pushed: AtomicU64::new(0),
            cluster_plans_received: AtomicU64::new(0),
            cluster_plans_served: AtomicU64::new(0),
            cluster_ring_epoch: AtomicU64::new(0),
            cluster_members: AtomicU64::new(0),
            tune_generation: AtomicU64::new(0),
            tune_candidates_tried: AtomicU64::new(0),
            tune_winners_installed: AtomicU64::new(0),
            tune_write_back_retries: AtomicU64::new(0),
            traced_requests: AtomicU64::new(0),
            tune_states: Mutex::new(Vec::new()),
            trace_log: Mutex::new(VecDeque::new()),
            batches: AtomicU64::new(0),
            multi_column_batches: AtomicU64::new(0),
            batched_columns: AtomicU64::new(0),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_ns_sum: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            stage_hist: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            stage_ns_sum: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_count: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_depth: AtomicUsize::new(0),
            queue_depth_peak: AtomicUsize::new(0),
            tenants: Mutex::new(Vec::new()),
        }
    }
}

impl Metrics {
    /// Get (registering on first use) the counter slice for `name`. The
    /// returned `Arc` is meant to be held by the transport for the life of
    /// the tenant so per-request increments never re-lock the registry.
    pub fn tenant(&self, name: &str) -> Arc<TenantCounters> {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some((_, counters)) = tenants.iter().find(|(n, _)| &**n == name) {
            return counters.clone();
        }
        let counters = Arc::new(TenantCounters::default());
        tenants.push((Arc::from(name), counters.clone()));
        counters
    }

    /// Append one traced-request hop, evicting the oldest once the log
    /// holds [`TRACE_LOG_CAP`] entries. The hop is also stamped into the
    /// kernel-level [`SolveTrace`](recblock_kernels::trace::SolveTrace)
    /// ring (when enabled) as a `RequestSpan` event, so one drained trace
    /// interleaves request spans with the kernel stages they covered.
    pub fn record_trace_hop(&self, hop: TraceHop) {
        use recblock_kernels::trace::{EventKind, SolveTrace, TraceEvent};
        SolveTrace::record(TraceEvent {
            kind: EventKind::RequestSpan,
            id: (hop.trace_id & 0xFF_FFFF) as u32,
            rows: hop.k as u32,
            chunks: u16::from(hop.proxied),
            ns: hop.total_ns,
        });
        self.traced_requests.fetch_add(1, Relaxed);
        let mut log = self.trace_log.lock().unwrap();
        if log.len() >= TRACE_LOG_CAP {
            log.pop_front();
        }
        log.push_back(hop);
    }

    /// Every retained hop for `key`, oldest first — the answer to a
    /// `TraceGet` wire request.
    pub fn trace_hops_for(&self, key: &PlanKey) -> Vec<TraceHop> {
        self.trace_log.lock().unwrap().iter().filter(|h| &h.key == key).cloned().collect()
    }

    /// Publish (replacing any previous state for the same fingerprint) the
    /// canary tuner's progress on one plan.
    pub fn publish_tune_state(&self, state: TuneState) {
        let mut states = self.tune_states.lock().unwrap();
        match states.iter_mut().find(|s| s.key == state.key) {
            Some(s) => *s = state,
            None => states.push(state),
        }
    }

    /// The published canary progress for `key`, if the tuner has looked at
    /// that fingerprint.
    pub fn tune_state_for(&self, key: &PlanKey) -> Option<TuneState> {
        self.tune_states.lock().unwrap().iter().find(|s| &s.key == key).cloned()
    }

    pub(crate) fn record_batch(&self, k: usize) {
        self.batches.fetch_add(1, Relaxed);
        self.batched_columns.fetch_add(k as u64, Relaxed);
        if k > 1 {
            self.multi_column_batches.fetch_add(1, Relaxed);
        }
        self.batch_hist[k.min(BATCH_BUCKETS - 1)].fetch_add(1, Relaxed);
    }

    pub(crate) fn record_latency(&self, elapsed: Duration) {
        let ns = (elapsed.as_nanos() as u64).max(1);
        let idx = (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency_hist[idx].fetch_add(1, Relaxed);
        self.latency_ns_sum.fetch_add(ns, Relaxed);
        self.latency_count.fetch_add(1, Relaxed);
    }

    pub(crate) fn record_stage(&self, stage: Stage, elapsed: Duration) {
        let ns = (elapsed.as_nanos() as u64).max(1);
        let idx = (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        let s = stage as usize;
        self.stage_hist[s][idx].fetch_add(1, Relaxed);
        self.stage_ns_sum[s].fetch_add(ns, Relaxed);
        self.stage_count[s].fetch_add(1, Relaxed);
    }

    pub(crate) fn queue_depth_changed(&self, depth: usize) {
        self.queue_depth.store(depth, Relaxed);
        self.queue_depth_peak.fetch_max(depth, Relaxed);
    }

    /// Mark the service as draining; [`Metrics::health`] reports
    /// [`Health::Draining`] from here on. Idempotent.
    pub fn set_draining(&self) {
        self.draining.store(true, Relaxed);
    }

    /// The health state derived from the live counters (see
    /// [`Health::derive`] for the thresholds).
    pub fn health(&self) -> Health {
        Health::derive(
            self.draining.load(Relaxed),
            self.worker_panics.load(Relaxed),
            self.store_quarantined.load(Relaxed),
        )
    }

    /// Copy every counter into a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batch_sizes = self
            .batch_hist
            .iter()
            .enumerate()
            .filter_map(|(k, c)| {
                let c = c.load(Relaxed);
                (c > 0).then_some((k, c))
            })
            .collect();
        let latency_buckets = self
            .latency_hist
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Relaxed);
                (c > 0).then_some((bucket_upper(i), c))
            })
            .collect();
        let stages = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let s = stage as usize;
                let count = self.stage_count[s].load(Relaxed);
                (count > 0).then(|| StageSnapshot {
                    stage,
                    buckets: self.stage_hist[s]
                        .iter()
                        .enumerate()
                        .filter_map(|(i, c)| {
                            let c = c.load(Relaxed);
                            (c > 0).then_some((bucket_upper(i), c))
                        })
                        .collect(),
                    total: Duration::from_nanos(self.stage_ns_sum[s].load(Relaxed)),
                    count,
                })
            })
            .collect();
        let mut tenants: Vec<TenantSnapshot> = self
            .tenants
            .lock()
            .unwrap()
            .iter()
            .map(|(name, counters)| counters.snapshot(name))
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        MetricsSnapshot {
            submitted: self.submitted.load(Relaxed),
            completed: self.completed.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
            failed: self.failed.load(Relaxed),
            cancelled: self.cancelled.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            cache_evictions: self.cache_evictions.load(Relaxed),
            plan_builds: self.plan_builds.load(Relaxed),
            preprocess_time: Duration::from_nanos(self.preprocess_ns.load(Relaxed)),
            preprocess_time_saved: Duration::from_nanos(self.preprocess_saved_ns.load(Relaxed)),
            store_hits: self.store_hits.load(Relaxed),
            store_misses: self.store_misses.load(Relaxed),
            store_errors: self.store_errors.load(Relaxed),
            store_writes: self.store_writes.load(Relaxed),
            store_bytes_read: self.store_bytes_read.load(Relaxed),
            store_load_time: Duration::from_nanos(self.store_load_ns.load(Relaxed)),
            worker_panics: self.worker_panics.load(Relaxed),
            store_quarantined: self.store_quarantined.load(Relaxed),
            health: self.health(),
            cluster_proxied: self.cluster_proxied.load(Relaxed),
            cluster_redirects: self.cluster_redirects.load(Relaxed),
            cluster_proxy_errors: self.cluster_proxy_errors.load(Relaxed),
            cluster_plans_pushed: self.cluster_plans_pushed.load(Relaxed),
            cluster_plans_received: self.cluster_plans_received.load(Relaxed),
            cluster_plans_served: self.cluster_plans_served.load(Relaxed),
            cluster_ring_epoch: self.cluster_ring_epoch.load(Relaxed),
            cluster_members: self.cluster_members.load(Relaxed),
            tune_generation: self.tune_generation.load(Relaxed),
            tune_candidates_tried: self.tune_candidates_tried.load(Relaxed),
            tune_winners_installed: self.tune_winners_installed.load(Relaxed),
            tune_write_back_retries: self.tune_write_back_retries.load(Relaxed),
            traced_requests: self.traced_requests.load(Relaxed),
            tune_states: self.tune_states.lock().unwrap().clone(),
            trace_hops: self.trace_log.lock().unwrap().iter().cloned().collect(),
            batches: self.batches.load(Relaxed),
            multi_column_batches: self.multi_column_batches.load(Relaxed),
            batched_columns: self.batched_columns.load(Relaxed),
            batch_sizes,
            latency_buckets,
            latency_total: Duration::from_nanos(self.latency_ns_sum.load(Relaxed)),
            mean_latency: mean(self.latency_ns_sum.load(Relaxed), self.latency_count.load(Relaxed)),
            stages,
            tenants,
            queue_depth: self.queue_depth.load(Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Relaxed),
        }
    }
}

fn mean(sum_ns: u64, count: u64) -> Duration {
    Duration::from_nanos(sum_ns.checked_div(count).unwrap_or(0))
}

/// Point-in-time copy of the service counters. See [`Metrics::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with a solution.
    pub completed: u64,
    /// Requests refused with [`crate::ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests answered with a solve error.
    pub failed: u64,
    /// Requests dropped at shutdown without an answer.
    pub cancelled: u64,
    /// Plan-cache lookups that found (or joined an in-flight build of) an
    /// existing plan.
    pub cache_hits: u64,
    /// Plan-cache lookups that had to start a build.
    pub cache_misses: u64,
    /// Plans dropped to respect the capacity bound.
    pub cache_evictions: u64,
    /// Preprocessing runs actually executed.
    pub plan_builds: u64,
    /// Wall-clock spent preprocessing (across all builds).
    pub preprocess_time: Duration,
    /// Preprocessing wall-clock avoided by cache hits: each hit credits the
    /// cached plan's own build time — the quantity the paper's Table 5
    /// amortisation argument is about.
    pub preprocess_time_saved: Duration,
    /// Plan-store lookups that loaded a usable persisted plan.
    pub store_hits: u64,
    /// Plan-store lookups that found no file for the key.
    pub store_misses: u64,
    /// Plan-store operations that failed (corrupt/stale file, I/O error);
    /// each one fell back to rebuilding.
    pub store_errors: u64,
    /// Plans persisted to the store by the background writer.
    pub store_writes: u64,
    /// Bytes of plan files read (successful loads only).
    pub store_bytes_read: u64,
    /// Worker panics that were contained (the batch got typed errors,
    /// the worker respawned).
    pub worker_panics: u64,
    /// Corrupt plan files quarantined by the boot-time recovery scan.
    pub store_quarantined: u64,
    /// Health state derived from the counters at snapshot time.
    pub health: Health,
    /// See [`Metrics::cluster_proxied`].
    pub cluster_proxied: u64,
    /// See [`Metrics::cluster_redirects`].
    pub cluster_redirects: u64,
    /// See [`Metrics::cluster_proxy_errors`].
    pub cluster_proxy_errors: u64,
    /// See [`Metrics::cluster_plans_pushed`].
    pub cluster_plans_pushed: u64,
    /// See [`Metrics::cluster_plans_received`].
    pub cluster_plans_received: u64,
    /// See [`Metrics::cluster_plans_served`].
    pub cluster_plans_served: u64,
    /// See [`Metrics::cluster_ring_epoch`] (gauge).
    pub cluster_ring_epoch: u64,
    /// See [`Metrics::cluster_members`] (gauge).
    pub cluster_members: u64,
    /// See [`Metrics::tune_generation`].
    pub tune_generation: u64,
    /// See [`Metrics::tune_candidates_tried`].
    pub tune_candidates_tried: u64,
    /// See [`Metrics::tune_winners_installed`].
    pub tune_winners_installed: u64,
    /// See [`Metrics::tune_write_back_retries`].
    pub tune_write_back_retries: u64,
    /// See [`Metrics::traced_requests`].
    pub traced_requests: u64,
    /// Per-fingerprint canary progress, in publication order (empty until
    /// the canary tuner measures something).
    pub tune_states: Vec<TuneState>,
    /// The retained traced-request hops, oldest first (at most
    /// [`TRACE_LOG_CAP`]).
    pub trace_hops: Vec<TraceHop>,
    /// Wall-clock spent loading plans from the store — compare against
    /// `preprocess_time` to see what persistence saves.
    pub store_load_time: Duration,
    /// Solve batches executed.
    pub batches: u64,
    /// Batches that coalesced more than one right-hand side.
    pub multi_column_batches: u64,
    /// Total right-hand sides across all batches.
    pub batched_columns: u64,
    /// `(batch size, count)` pairs; sizes ≥ [`BATCH_BUCKETS`]`-1` share the
    /// final bucket.
    pub batch_sizes: Vec<(usize, u64)>,
    /// `(upper bound in ns, count)` log₂ latency buckets (submit → answer);
    /// the open-ended final bucket reports `u64::MAX`.
    pub latency_buckets: Vec<(u64, u64)>,
    /// Total submit→answer wall-clock across all answered requests.
    pub latency_total: Duration,
    /// Mean submit→answer latency.
    pub mean_latency: Duration,
    /// Per-stage timing histograms (only stages that recorded at least one
    /// sample), in pipeline order.
    pub stages: Vec<StageSnapshot>,
    /// Per-tenant admission/QoS counter slices, sorted by tenant name
    /// (empty when no transport registered tenants).
    pub tenants: Vec<TenantSnapshot>,
    /// Queued requests right now.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub queue_depth_peak: usize,
}

/// One stage's timing histogram within a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Which stage.
    pub stage: Stage,
    /// `(upper bound in ns, count)` log₂ buckets, like
    /// [`MetricsSnapshot::latency_buckets`].
    pub buckets: Vec<(u64, u64)>,
    /// Total wall-clock across all samples.
    pub total: Duration,
    /// Samples recorded.
    pub count: u64,
}

impl StageSnapshot {
    /// Estimated latency percentile for this stage (see
    /// [`MetricsSnapshot::latency_percentile`]).
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        percentile_from_buckets(&self.buckets, p)
    }
}

/// Estimate the `p`-quantile (0 ≤ p ≤ 1) from sparse `(upper bound ns,
/// count)` log₂ buckets by log-linear interpolation within the bucket the
/// target sample falls in: a sample at fraction `f` through bucket
/// `[lo, 2·lo)` is estimated as `lo · 2^f`. The open-ended final bucket is
/// treated as one octave starting at `2^(LATENCY_BUCKETS-1)` ns.
fn percentile_from_buckets(buckets: &[(u64, u64)], p: f64) -> Option<Duration> {
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return None;
    }
    let target = p.clamp(0.0, 1.0) * total as f64;
    let lower = |ub: u64| -> f64 {
        if ub == u64::MAX {
            (1u64 << (LATENCY_BUCKETS - 1)) as f64
        } else {
            ((ub / 2).max(1)) as f64
        }
    };
    let mut seen = 0u64;
    for &(ub, c) in buckets {
        if (seen + c) as f64 >= target {
            let frac = ((target - seen as f64) / c as f64).clamp(0.0, 1.0);
            return Some(Duration::from_nanos((lower(ub) * 2f64.powf(frac)).round() as u64));
        }
        seen += c;
    }
    let &(ub, _) = buckets.last()?;
    Some(Duration::from_nanos((lower(ub) * 2.0).round() as u64))
}

impl MetricsSnapshot {
    /// Mean columns per executed batch (0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_columns as f64 / self.batches as f64
        }
    }

    /// Estimated submit→answer latency percentile (`p` in `[0, 1]`,
    /// e.g. `0.99` for p99), log-linearly interpolated within the log₂
    /// histogram bucket the target sample lands in. `None` before any
    /// request has been answered.
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        percentile_from_buckets(&self.latency_buckets, p)
    }

    /// The timing snapshot for one stage, if it recorded any samples.
    pub fn stage(&self, stage: Stage) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Render every counter and histogram in Prometheus text exposition
    /// format (see [`crate::prometheus::render`]).
    pub fn render_prometheus(&self) -> String {
        crate::prometheus::render(self)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} completed, {} rejected, {} failed, {} cancelled",
            self.submitted, self.completed, self.rejected, self.failed, self.cancelled
        )?;
        writeln!(
            f,
            "plan cache: {} hits / {} misses, {} builds ({:?} building, {:?} saved), {} evictions",
            self.cache_hits,
            self.cache_misses,
            self.plan_builds,
            self.preprocess_time,
            self.preprocess_time_saved,
            self.cache_evictions
        )?;
        writeln!(
            f,
            "plan store: {} hits / {} misses, {} errors, {} writes, {} bytes read in {:?}",
            self.store_hits,
            self.store_misses,
            self.store_errors,
            self.store_writes,
            self.store_bytes_read,
            self.store_load_time
        )?;
        writeln!(
            f,
            "health: {} ({} contained worker panics, {} quarantined plan files)",
            self.health, self.worker_panics, self.store_quarantined
        )?;
        if self.cluster_members > 0 {
            writeln!(
                f,
                "cluster: {} members (ring epoch {}), {} proxied, {} redirects, {} proxy errors, \
                 plans {} pushed / {} received / {} served",
                self.cluster_members,
                self.cluster_ring_epoch,
                self.cluster_proxied,
                self.cluster_redirects,
                self.cluster_proxy_errors,
                self.cluster_plans_pushed,
                self.cluster_plans_received,
                self.cluster_plans_served
            )?;
        }
        if self.tune_candidates_tried > 0 || !self.tune_states.is_empty() {
            writeln!(
                f,
                "tuning: generation {}, {} candidates tried, {} winners installed, \
                 {} write-back retries",
                self.tune_generation,
                self.tune_candidates_tried,
                self.tune_winners_installed,
                self.tune_write_back_retries
            )?;
            for t in &self.tune_states {
                writeln!(
                    f,
                    "  plan {:016x}: {}/{} candidates, {}",
                    t.key.structure.hash,
                    t.tried,
                    t.total,
                    match (&t.winner, t.done) {
                        (Some(w), _) => format!("winner {} (+{:.1}%)", w, t.gain * 100.0),
                        (None, true) => "incumbent kept".to_string(),
                        (None, false) => "undecided".to_string(),
                    }
                )?;
            }
        }
        writeln!(
            f,
            "batching: {} batches ({} multi-column), {} columns, mean size {:.2}",
            self.batches,
            self.multi_column_batches,
            self.batched_columns,
            self.mean_batch_size()
        )?;
        write!(
            f,
            "latency: mean {:?}, p50 {:?}, p99 {:?}; queue depth {} (peak {})",
            self.mean_latency,
            self.latency_percentile(0.5).unwrap_or_default(),
            self.latency_percentile(0.99).unwrap_or_default(),
            self.queue_depth,
            self.queue_depth_peak
        )?;
        for s in &self.stages {
            write!(
                f,
                "\nstage {:<14} {:>6} samples, total {:?}, p50 {:?}, p90 {:?}, p99 {:?}",
                s.stage.name(),
                s.count,
                s.total,
                s.percentile(0.5).unwrap_or_default(),
                s.percentile(0.9).unwrap_or_default(),
                s.percentile(0.99).unwrap_or_default()
            )?;
        }
        for t in &self.tenants {
            write!(
                f,
                "\ntenant {:<12} {} admitted ({} cost), {} rate-rejected, {} cost-shed, \
                 {} deadline-shed, {} completed, {} failed, depth {}",
                t.tenant,
                t.admitted,
                t.admitted_cost,
                t.admission_rejected,
                t.shed_by_cost,
                t.shed_by_deadline,
                t.completed,
                t.failed,
                t.queue_depth
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_histogram_counts_and_overflow() {
        let m = Metrics::default();
        m.record_batch(1);
        m.record_batch(4);
        m.record_batch(4);
        m.record_batch(500);
        let s = m.snapshot();
        assert_eq!(s.batches, 4);
        assert_eq!(s.multi_column_batches, 3);
        assert_eq!(s.batched_columns, 509);
        assert!(s.batch_sizes.contains(&(1, 1)));
        assert!(s.batch_sizes.contains(&(4, 2)));
        assert!(s.batch_sizes.contains(&(BATCH_BUCKETS - 1, 1)));
        assert!((s.mean_batch_size() - 509.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn latency_buckets_are_log2() {
        let m = Metrics::default();
        m.record_latency(Duration::from_nanos(1100)); // bucket [1024, 2048) ns
        m.record_latency(Duration::from_nanos(1500));
        m.record_latency(Duration::from_secs(1));
        let s = m.snapshot();
        assert_eq!(s.latency_buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);
        assert!(s.latency_buckets.iter().any(|&(ub, c)| ub == 2048 && c == 2));
        assert!(s.mean_latency > Duration::from_millis(300));
    }

    #[test]
    fn queue_depth_peak_tracks_maximum() {
        let m = Metrics::default();
        m.queue_depth_changed(3);
        m.queue_depth_changed(9);
        m.queue_depth_changed(2);
        let s = m.snapshot();
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_depth_peak, 9);
    }

    #[test]
    fn snapshot_display_mentions_key_counters() {
        let m = Metrics::default();
        m.record_batch(2);
        let text = m.snapshot().to_string();
        assert!(text.contains("plan cache"));
        assert!(text.contains("multi-column"));
    }

    #[test]
    fn final_latency_bucket_reports_open_ended_bound() {
        // Bucket 33 is open-ended: a ~20 s sample (2^34.2 ns) lands there
        // and its reported upper bound must be u64::MAX, not 2^34 (which
        // would mislabel it as < ~17.2 s).
        let m = Metrics::default();
        m.record_latency(Duration::from_secs(20));
        let s = m.snapshot();
        assert_eq!(s.latency_buckets, vec![(u64::MAX, 1)]);
        // The boundary sample of the last *bounded* bucket still reports a
        // finite bound.
        let m = Metrics::default();
        m.record_latency(Duration::from_nanos((1 << 33) - 1));
        let s = m.snapshot();
        assert_eq!(s.latency_buckets, vec![(1u64 << 33, 1)]);
    }

    #[test]
    fn percentiles_on_single_bucket_interpolate_geometrically() {
        let m = Metrics::default();
        for _ in 0..100 {
            m.record_latency(Duration::from_nanos(1500)); // bucket [1024, 2048)
        }
        let s = m.snapshot();
        // p50 at half the bucket (log scale): 1024·√2 ≈ 1448 ns.
        let p50 = s.latency_percentile(0.5).unwrap().as_nanos() as u64;
        assert!((1447..=1449).contains(&p50), "p50={p50}");
        // p0 sits at the bucket floor, p100 at the ceiling.
        assert_eq!(s.latency_percentile(0.0).unwrap().as_nanos(), 1024);
        assert_eq!(s.latency_percentile(1.0).unwrap().as_nanos(), 2048);
    }

    #[test]
    fn percentiles_across_buckets_hit_exact_boundaries() {
        let m = Metrics::default();
        for _ in 0..50 {
            m.record_latency(Duration::from_nanos(1500)); // [1024, 2048)
        }
        for _ in 0..50 {
            m.record_latency(Duration::from_nanos(3000)); // [2048, 4096)
        }
        let s = m.snapshot();
        // The median of an exact 50/50 split is the shared bucket boundary.
        assert_eq!(s.latency_percentile(0.5).unwrap().as_nanos(), 2048);
        // p75 is halfway (log scale) through the upper bucket: 2048·√2.
        let p75 = s.latency_percentile(0.75).unwrap().as_nanos() as u64;
        assert!((2895..=2897).contains(&p75), "p75={p75}");
        assert!(s.latency_percentile(0.25).unwrap() < s.latency_percentile(0.75).unwrap());
    }

    #[test]
    fn percentile_none_before_any_sample() {
        assert_eq!(Metrics::default().snapshot().latency_percentile(0.5), None);
    }

    #[test]
    fn trace_log_is_bounded_and_filters_by_key() {
        use recblock_matrix::Fingerprint;
        let m = Metrics::default();
        let key = |h: u64| PlanKey {
            structure: Fingerprint { nrows: 8, ncols: 8, nnz: 8, hash: h },
            values: h,
        };
        for i in 0..(TRACE_LOG_CAP as u64 + 10) {
            m.record_trace_hop(TraceHop {
                trace_id: i,
                key: key(i % 2),
                node: "n0".into(),
                tenant: "t".into(),
                k: 1,
                solve_ns: 10,
                respond_ns: 1,
                total_ns: 11,
                proxied: false,
            });
        }
        let s = m.snapshot();
        assert_eq!(s.trace_hops.len(), TRACE_LOG_CAP);
        assert_eq!(s.traced_requests, TRACE_LOG_CAP as u64 + 10);
        // The oldest hops fell off; the newest survived.
        assert_eq!(s.trace_hops.last().unwrap().trace_id, TRACE_LOG_CAP as u64 + 9);
        let hops = m.trace_hops_for(&key(0));
        assert!(!hops.is_empty());
        assert!(hops.iter().all(|h| h.key == key(0)));
    }

    #[test]
    fn tune_state_publish_replaces_and_renders() {
        use recblock_matrix::Fingerprint;
        let m = Metrics::default();
        let key = PlanKey {
            structure: Fingerprint { nrows: 9, ncols: 9, nnz: 20, hash: 0xBEEF },
            values: 7,
        };
        m.tune_candidates_tried.fetch_add(3, Relaxed);
        m.publish_tune_state(TuneState {
            key,
            generation: 0,
            tried: 3,
            total: 8,
            done: false,
            winner: None,
            gain: 0.0,
        });
        m.publish_tune_state(TuneState {
            key,
            generation: 1,
            tried: 8,
            total: 8,
            done: true,
            winner: Some("p2p-fine".into()),
            gain: 0.12,
        });
        let s = m.snapshot();
        assert_eq!(s.tune_states.len(), 1, "publish replaces, never duplicates");
        assert_eq!(m.tune_state_for(&key).unwrap().winner.as_deref(), Some("p2p-fine"));
        let text = s.to_string();
        assert!(text.contains("tuning: generation"), "{text}");
        assert!(text.contains("p2p-fine"), "{text}");
    }

    #[test]
    fn stages_record_into_their_own_histograms() {
        let m = Metrics::default();
        m.record_stage(Stage::Solve, Duration::from_micros(100));
        m.record_stage(Stage::Solve, Duration::from_micros(200));
        m.record_stage(Stage::QueueWait, Duration::from_nanos(1500));
        let s = m.snapshot();
        assert_eq!(s.stages.len(), 2);
        let solve = s.stage(Stage::Solve).unwrap();
        assert_eq!(solve.count, 2);
        assert_eq!(solve.total, Duration::from_micros(300));
        assert!(solve.percentile(0.5).unwrap() > Duration::from_micros(64));
        assert!(s.stage(Stage::StoreLoad).is_none());
        // Stage lines appear in the Display rendering.
        let text = s.to_string();
        assert!(text.contains("queue_wait"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }
}
