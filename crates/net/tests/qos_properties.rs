//! Property tests over the QoS primitives (satellite of the network
//! tier): token-bucket refill is monotone and bounded, admission never
//! over- or under-charges, and deficit round-robin throughput tracks lane
//! weights under saturation for arbitrary weights and costs.

use proptest::prelude::*;
use recblock_net::{FairQueue, TokenBucket};
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    // Refill is monotone in time: replaying the same steps with extra
    // elapsed time never leaves fewer tokens, and the level never
    // exceeds the burst or drops below zero.
    #[test]
    fn bucket_refill_is_monotone_and_bounded(
        rate in 0.0f64..10_000.0,
        burst in 1.0f64..100_000.0,
        steps in proptest::collection::vec((0u64..2_000, 0u32..3), 1..40),
    ) {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(rate, burst, t0);
        let mut lagging = TokenBucket::new(rate, burst, t0);
        let mut now = t0;
        for &(dt_ms, jitter) in &steps {
            now += Duration::from_millis(dt_ms);
            let before = bucket.tokens();
            bucket.refill(now);
            prop_assert!(bucket.tokens() + 1e-9 >= before.min(burst),
                "refill removed tokens: {} -> {}", before, bucket.tokens());
            prop_assert!(bucket.tokens() <= burst + 1e-9);
            prop_assert!(bucket.tokens() >= -1e-9);
            // A bucket refilled to an earlier instant never holds more.
            lagging.refill(now - Duration::from_millis(jitter as u64));
            prop_assert!(lagging.tokens() <= bucket.tokens() + 1e-9);
            lagging.refill(now);
        }
    }

    // try_take conserves tokens: an admit debits exactly the cost, a
    // refusal debits nothing, and spend can never exceed burst + accrual.
    #[test]
    fn bucket_admission_conserves_tokens(
        rate in 0.0f64..5_000.0,
        burst in 1.0f64..10_000.0,
        requests in proptest::collection::vec((1u64..5_000, 0u64..500), 1..60),
    ) {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(rate, burst, t0);
        let mut now = t0;
        let mut spent = 0.0f64;
        let mut elapsed = 0.0f64;
        for &(cost, dt_ms) in &requests {
            now += Duration::from_millis(dt_ms);
            elapsed += dt_ms as f64 / 1000.0;
            let cost = cost as f64;
            let before = { bucket.refill(now); bucket.tokens() };
            let admitted = bucket.try_take(cost, now);
            if admitted {
                spent += cost;
                prop_assert!(before + 1e-6 >= cost, "admitted without cover");
                prop_assert!((before - cost - bucket.tokens()).abs() < 1e-6);
            } else {
                prop_assert!(before < cost, "refused with cover available");
                prop_assert!((before - bucket.tokens()).abs() < 1e-9);
            }
            prop_assert!(spent <= burst + rate * elapsed + 1e-6,
                "spent more than burst plus accrual");
        }
    }

    // Under saturation (every lane always backlogged), DRR serves cost in
    // proportion to weight: each lane's share is within 20% of its
    // weight share once enough cost has been served.
    #[test]
    fn drr_cost_share_tracks_weights_under_saturation(
        weights in proptest::collection::vec(1u32..8, 2..5),
        costs in proptest::collection::vec(1u32..50, 2..5),
        rounds in 200usize..400,
    ) {
        let lanes = weights.len();
        let mut q = FairQueue::new();
        for &w in &weights {
            q.add_lane(w as f64);
        }
        // Serve a fixed total cost; stock each lane with more cost than
        // the whole measurement serves so no lane can drain mid-run.
        let target: f64 = rounds as f64 * 50.0;
        for i in 0..lanes {
            let cost = costs[i % costs.len()] as f64;
            let per_lane = (target / cost).ceil() as usize + rounds;
            for _ in 0..per_lane {
                q.push(i, cost, i);
            }
        }
        let mut served = vec![0.0f64; lanes];
        let mut total = 0.0;
        while total < target {
            let (lane, cost, _) = q.pop().expect("lanes stay backlogged");
            served[lane] += cost;
            total += cost;
            prop_assert!(q.lane_depth(lane) > 0, "lane drained mid-measurement");
        }
        let weight_sum: f64 = weights.iter().map(|&w| w as f64).sum();
        // Boundary effects: one head-of-line item per lane per rotation.
        let max_item = costs.iter().cloned().max().unwrap() as f64;
        let slack = 0.2 * total + 2.0 * max_item * lanes as f64;
        for i in 0..lanes {
            let fair_share = total * weights[i] as f64 / weight_sum;
            prop_assert!(
                (served[i] - fair_share).abs() <= slack,
                "lane {} (weight {}) served {:.0}, fair share {:.0} ± {:.0}",
                i, weights[i], served[i], fair_share, slack
            );
        }
    }

    // Work conservation: whatever the weights, DRR never idles while any
    // lane holds items, and everything pushed is eventually popped.
    #[test]
    fn drr_is_work_conserving(
        weights in proptest::collection::vec(1u32..10, 1..6),
        items in proptest::collection::vec((0usize..6, 1u32..100), 1..200),
    ) {
        let mut q = FairQueue::new();
        for &w in &weights {
            q.add_lane(w as f64);
        }
        let mut pushed = 0usize;
        for &(lane, cost) in &items {
            let lane = lane % weights.len();
            q.push(lane, cost as f64, (lane, cost));
            pushed += 1;
        }
        let mut popped = 0usize;
        while let Some((lane, cost, (l, c))) = q.pop() {
            prop_assert_eq!(lane, l, "item surfaced on its own lane");
            prop_assert_eq!(cost, c as f64);
            popped += 1;
            prop_assert!(popped <= pushed, "popped an item that was never pushed");
        }
        prop_assert_eq!(popped, pushed);
        prop_assert!(q.is_empty());
        for i in 0..weights.len() {
            prop_assert_eq!(q.lane_depth(i), 0);
            prop_assert!(q.lane_cost(i).abs() < 1e-9);
        }
    }
}
