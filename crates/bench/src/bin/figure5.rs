//! Regenerate the paper's Figure 5 (best-kernel heatmaps).
//!
//! Pass `--measure` to additionally run the CPU-measured sweep with the
//! real kernels (the paper's methodology, on this machine).
use recblock_bench::HarnessConfig;
fn main() {
    let cfg = HarnessConfig::default();
    print!("{}", recblock_bench::experiments::figure5::run(&cfg));
    println!();
    print!("{}", recblock_bench::experiments::figure5::corpus_agreement(&cfg, 4, 4));
    if std::env::args().any(|a| a == "--measure") {
        println!();
        print!("{}", recblock_bench::experiments::figure5::run_measured(4096, 5));
    }
}
