//! Allocation-regression guard for the network event loop.
//!
//! The test thread drives `NetServer::turn` itself while a client thread
//! keeps solve traffic flowing. A counting global allocator scoped to the
//! event-loop thread (everything the test thread allocates while the
//! window is open) must observe **zero** heap allocations once the pools
//! are warm: request buffers come from the rhs pool, inflight slots from
//! the slab free list, responses are encoded into retained write buffers,
//! and completions ride a pre-reserved deque. Any change that sneaks a
//! per-request `Vec` into the loop fails here immediately.
//!
//! Worker-thread and client-thread allocations are deliberately not
//! counted — the zero-allocation contract is for the event loop.

use recblock_matrix::generate;
use recblock_net::{NetClient, NetConfig, NetServer};
use recblock_serve::{ServeConfig, SolveService};
use recblock_store::PlanKey;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

unsafe extern "C" {
    fn pthread_self() -> usize;
}

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static TRACKING: AtomicBool = AtomicBool::new(false);
static TARGET_THREAD: AtomicUsize = AtomicUsize::new(0);

fn on_target_thread() -> bool {
    TRACKING.load(Ordering::Relaxed)
        && TARGET_THREAD.load(Ordering::Relaxed) == unsafe { pthread_self() }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_target_thread() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if on_target_thread() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_target_thread() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WARMUP: usize = 150;
const MEASURED: usize = 150;

#[test]
fn steady_state_event_loop_does_not_allocate() {
    let service = Arc::new(SolveService::<f64>::new(ServeConfig::default().with_workers(2)));
    let n = 1500;
    let l = generate::random_lower::<f64>(n, 4.0, 77);
    let rhs = vec![1.0; n];
    service.submit(&l, rhs).unwrap().wait().unwrap();
    let key = PlanKey::of(&l);

    let mut server = NetServer::bind("127.0.0.1:0", NetConfig::default(), service.clone()).unwrap();
    let addr = server.local_addr().unwrap();
    let ctl = server.ctl();

    // Client on its own thread: warm-up round trips, then the measured
    // batch. Its allocations are not on the target thread.
    let warmed = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let client = {
        let (warmed, done) = (warmed.clone(), done.clone());
        thread::spawn(move || {
            let mut c = NetClient::connect(addr).unwrap();
            c.set_timeout(Some(Duration::from_secs(30))).unwrap();
            let b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
            // Warm up with the same traffic mix the window measures, so
            // every pool and buffer reaches its high-water mark first.
            let cols = [b.as_slice(), b.as_slice()];
            for i in 0..WARMUP {
                if i % 3 == 0 {
                    c.solve_multi::<f64>("alpha", &key, &cols, 0).unwrap();
                } else {
                    c.solve::<f64>("alpha", &key, &b).unwrap();
                }
            }
            warmed.store(true, Ordering::SeqCst);
            for i in 0..MEASURED {
                if i % 3 == 0 {
                    c.solve_multi::<f64>("alpha", &key, &cols, 0).unwrap();
                } else {
                    c.solve::<f64>("alpha", &key, &b).unwrap();
                }
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    TARGET_THREAD.store(unsafe { pthread_self() }, Ordering::SeqCst);

    // Warm-up: pools fill, buffers reach their high-water marks.
    while !warmed.load(Ordering::SeqCst) {
        server.turn(Some(Duration::from_millis(10))).unwrap();
    }

    // Measured window: the event loop must be allocation-free.
    ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    while !done.load(Ordering::SeqCst) {
        server.turn(Some(Duration::from_millis(10))).unwrap();
    }
    TRACKING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    client.join().unwrap();
    assert_eq!(
        allocs, 0,
        "event loop allocated {allocs} times across {MEASURED} steady-state requests"
    );

    // Drain cleanly so the listener and connections close before teardown.
    ctl.shutdown();
    while server.turn(Some(Duration::from_millis(10))).unwrap() {}
}
