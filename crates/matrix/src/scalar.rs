//! Floating-point scalar abstraction (`f32`/`f64`) with atomic accumulation.
//!
//! The sync-free SpTRSV kernel (Algorithm 3 of the paper) accumulates partial
//! sums into `left_sum` with atomic additions. CUDA provides `atomicAdd` for
//! both precisions; on the CPU we reproduce it with a compare-and-swap loop
//! over the bit representation, exposed through [`ScalarAtomic`].

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Atomic cell holding a floating-point value.
///
/// `load`/`store` use acquire/release ordering so that a value published by
/// one solver thread is visible to the busy-waiting consumer, mirroring the
/// GPU memory-fence semantics the sync-free algorithm relies on.
pub trait ScalarAtomic: Send + Sync {
    /// The scalar type stored in the cell.
    type Value: Copy;

    /// Create a cell holding `v`.
    fn new(v: Self::Value) -> Self;
    /// Acquire-load the current value.
    fn load(&self) -> Self::Value;
    /// Release-store `v`.
    fn store(&self, v: Self::Value);
    /// Atomically add `v` to the cell (CAS loop — the CPU analogue of CUDA
    /// `atomicAdd` on floats).
    fn fetch_add(&self, v: Self::Value);
}

/// Atomic `f32` built on [`AtomicU32`].
#[derive(Debug, Default)]
pub struct AtomicF32(AtomicU32);

/// Atomic `f64` built on [`AtomicU64`].
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl ScalarAtomic for AtomicF32 {
    type Value = f32;

    fn new(v: f32) -> Self {
        AtomicF32(AtomicU32::new(v.to_bits()))
    }

    fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Acquire))
    }

    fn store(&self, v: f32) {
        self.0.store(v.to_bits(), Ordering::Release);
    }

    fn fetch_add(&self, v: f32) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f32::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl ScalarAtomic for AtomicF64 {
    type Value = f64;

    fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Release);
    }

    fn fetch_add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Floating-point element type of all matrices and vectors in the suite.
///
/// Implemented for `f32` and `f64`. The paper evaluates both precisions
/// (its Figure 7); keeping every kernel generic over `Scalar` lets a single
/// code path serve both.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one element in bytes — the GPU cost model charges memory
    /// traffic per element, which is what makes the double/single precision
    /// ratio experiment (Figure 7) meaningful.
    const BYTES: usize;
    /// Short name used in reports ("f32"/"f64").
    const NAME: &'static str;

    /// Atomic cell type for this scalar.
    type Atomic: ScalarAtomic<Value = Self>;

    /// Lossy conversion from `f64` (used by generators and test fixtures).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by norms and reports).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` if the value is finite (not NaN/±inf).
    fn is_finite(self) -> bool;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";

    type Atomic = AtomicF32;

    fn from_f64(v: f64) -> Self {
        v as f32
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn abs(self) -> Self {
        f32::abs(self)
    }

    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    const NAME: &'static str = "f64";

    type Atomic = AtomicF64;

    fn from_f64(v: f64) -> Self {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn abs(self) -> Self {
        f64::abs(self)
    }

    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn atomic_f64_roundtrip() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn atomic_f32_roundtrip() {
        let a = AtomicF32::new(0.5);
        assert_eq!(a.load(), 0.5);
        a.store(3.75);
        assert_eq!(a.load(), 3.75);
    }

    #[test]
    fn atomic_fetch_add_accumulates() {
        let a = AtomicF64::new(0.0);
        for _ in 0..100 {
            a.fetch_add(0.25);
        }
        assert_eq!(a.load(), 25.0);
    }

    #[test]
    fn atomic_fetch_add_is_thread_safe() {
        let a = Arc::new(AtomicF64::new(0.0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        a.fetch_add(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.load(), 80_000.0);
    }

    #[test]
    fn scalar_constants() {
        assert_eq!(<f64 as Scalar>::ZERO, 0.0);
        assert_eq!(<f32 as Scalar>::ONE, 1.0);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<f64 as Scalar>::NAME, "f64");
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(f32::from_f64(1.5), 1.5f32);
        assert_eq!(2.5f64.to_f64(), 2.5);
        assert_eq!((-3.0f64).abs(), 3.0);
        assert!(!(f64::NAN).is_finite());
        assert!(1.0f32.is_finite());
    }
}
