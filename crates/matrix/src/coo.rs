//! Coordinate (triplet) format — the assembly/builder format.

use crate::csr::Csr;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// A sparse matrix as an unordered list of `(row, col, value)` triplets.
///
/// Duplicates are allowed during assembly and are summed on conversion to
/// CSR, matching the convention of finite-element assembly and of the Matrix
/// Market format.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<S> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<S>,
}

impl<S: Scalar> Coo<S> {
    /// An empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append a triplet.
    pub fn push(&mut self, i: usize, j: usize, v: S) -> Result<(), MatrixError> {
        if i >= self.nrows {
            return Err(MatrixError::IndexOutOfBounds { what: "row", index: i, bound: self.nrows });
        }
        if j >= self.ncols {
            return Err(MatrixError::IndexOutOfBounds { what: "col", index: j, bound: self.ncols });
        }
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
        Ok(())
    }

    /// Iterate over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, S)> + '_ {
        self.rows.iter().zip(&self.cols).zip(&self.vals).map(|((&i, &j), &v)| (i, j, v))
    }

    /// Convert to CSR. Triplets are sorted `(row, col)` and duplicates are
    /// summed; entries that cancel to exactly zero are kept (structural
    /// nonzeros), matching standard sparse-library behaviour.
    pub fn to_csr(&self) -> Csr<S> {
        let nnz = self.nnz();
        // Counting sort by row first for O(nnz + n) overall.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &i in &self.rows {
            row_counts[i + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = vec![0; nnz];
        let mut next = row_counts.clone();
        for k in 0..nnz {
            let i = self.rows[k];
            order[next[i]] = k;
            next[i] += 1;
        }
        // Sort each row's slice by column, then merge duplicates.
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::with_capacity(nnz);
        let mut vals: Vec<S> = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, S)> = Vec::new();
        for i in 0..self.nrows {
            scratch.clear();
            scratch.extend(
                order[row_counts[i]..row_counts[i + 1]]
                    .iter()
                    .map(|&k| (self.cols[k], self.vals[k])),
            );
            scratch.sort_unstable_by_key(|&(j, _)| j);
            let mut iter = scratch.iter().copied();
            if let Some((mut cur_j, mut acc)) = iter.next() {
                for (j, v) in iter {
                    if j == cur_j {
                        acc += v;
                    } else {
                        col_idx.push(cur_j);
                        vals.push(acc);
                        cur_j = j;
                        acc = v;
                    }
                }
                col_idx.push(cur_j);
                vals.push(acc);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, vals)
    }
}

impl<S: Scalar> From<&Csr<S>> for Coo<S> {
    fn from(a: &Csr<S>) -> Self {
        let mut coo = Coo::with_capacity(a.nrows(), a.ncols(), a.nnz());
        for (i, j, v) in a.iter() {
            coo.rows.push(i);
            coo.cols.push(j);
            coo.vals.push(v);
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert() {
        let mut c = Coo::<f64>::new(2, 2);
        c.push(1, 0, 2.0).unwrap();
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, 3.0).unwrap();
        let a = c.to_csr();
        assert_eq!(a.get(0, 0), Some(1.0));
        assert_eq!(a.get(1, 0), Some(2.0));
        assert_eq!(a.get(1, 1), Some(3.0));
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut c = Coo::<f64>::new(1, 1);
        c.push(0, 0, 1.5).unwrap();
        c.push(0, 0, 2.5).unwrap();
        let a = c.to_csr();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), Some(4.0));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut c = Coo::<f64>::new(2, 2);
        assert!(c.push(2, 0, 1.0).is_err());
        assert!(c.push(0, 5, 1.0).is_err());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut c = Coo::<f64>::new(3, 3);
        for &(i, j, v) in &[(2, 2, 9.0), (0, 1, 2.0), (2, 0, 7.0), (0, 0, 1.0)] {
            c.push(i, j, v).unwrap();
        }
        let a = c.to_csr();
        assert_eq!(a.row(0), (&[0usize, 1][..], &[1.0, 2.0][..]));
        assert_eq!(a.row(2), (&[0usize, 2][..], &[7.0, 9.0][..]));
    }

    #[test]
    fn csr_roundtrip_through_coo() {
        let a = Csr::<f64>::identity(5);
        let coo = Coo::from(&a);
        assert_eq!(coo.to_csr(), a);
    }

    #[test]
    fn empty_builder_yields_zero_matrix() {
        let c = Coo::<f64>::new(3, 4);
        let a = c.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 4);
    }
}
