//! The non-blocking event-loop server.
//!
//! One thread owns every socket. A [`Poller`] (epoll/poll shim) drives
//! three token classes: the listener, a self-pipe the compute tier wakes
//! after finishing a solve, and one token per connection. Requests flow
//!
//! ```text
//! read → frame decode → admission ladder → fair queue → dispatch
//!   admission: tenant? draining? shape? plan warm? tokens? queued cost?
//! worker → ResponseSink → completion queue → wake pipe → write-back
//! ```
//!
//! The steady-state path performs **zero allocations on the event-loop
//! thread**: read/write buffers, value-column vectors, the in-flight slab,
//! the completion queue and every queue node are pooled and recycled
//! (`tests/alloc_regression.rs` enforces this with a counting allocator).

use crate::config::{NetConfig, TenantPolicy};
use crate::error::ErrCode;
use crate::frame::{
    self, FrameError, FrameKind, Header, MemberInfo, RingStateMsg, StatReply, TenantStat,
    TraceHopMsg, HEADER_LEN,
};
use crate::poll::{Event, Poller};
use crate::qos::{FairQueue, TokenBucket};
use recblock::RecBlockSolver;
use recblock_matrix::Scalar;
use recblock_serve::{Metrics, ResponseSink, ServeError, SolveService, TenantCounters, TraceHop};
use recblock_store::PlanKey;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_BASE: u64 = 2;
const READ_CHUNK: usize = 64 * 1024;
const MAX_READ_ROUNDS: usize = 16;
const POOL_VECS: usize = 512;
const POOL_COLSETS: usize = 64;

/// Routing decision for one solve request's fingerprint, made by the
/// cluster coordinator before the local plan path is consulted.
#[derive(Debug, Clone)]
pub enum Route {
    /// This node owns or replicates the plan: serve it locally.
    Local,
    /// Forward the request to the node at `addr` over a pooled
    /// inter-node connection and relay its answer to the client.
    Proxy(String),
    /// Answer `ErrCode::Redirect` with `addr` so the client retries
    /// against the owner directly.
    Redirect(String),
}

/// What a cluster coordinator provides for this front end to take part
/// in a ring. Every method is called from the event-loop thread and
/// must not block on network I/O — [`ClusterHooks::proxy_solve`] hands
/// the request to worker threads owned by the implementation, which
/// deliver per-column results through the same [`ResponseSink`] the
/// compute tier uses.
pub trait ClusterHooks<S: Scalar>: Send + Sync {
    /// Decide where a solve for `key` should run.
    fn route(&self, key: &PlanKey) -> Route;
    /// A node asked to join; fold it into the ring, return the new view.
    fn handle_join(&self, member: MemberInfo) -> RingStateMsg;
    /// A node announced departure; drop it, return the new view.
    fn handle_leave(&self, name: &str) -> RingStateMsg;
    /// A peer broadcast its ring view; merge it, return our view (the
    /// reply doubles as anti-entropy for the sender).
    fn apply_ring(&self, msg: RingStateMsg) -> RingStateMsg;
    /// Current ring view (for gauges and `RingState` replies).
    fn ring_state(&self) -> RingStateMsg;
    /// A peer pushed a serialized `.rbplan`; verify and adopt it.
    fn accept_plan_push(&self, key: PlanKey, bytes: &[u8]) -> Result<(), (ErrCode, String)>;
    /// A peer wants our copy of a plan. `build_intent` set means the
    /// caller will build on `PlanNotFound` — the implementation grants
    /// the cluster-wide build slot to exactly one such puller.
    fn plan_data(&self, key: PlanKey, build_intent: bool) -> Result<Vec<u8>, (ErrCode, String)>;
    /// Relay a solve to `addr` asynchronously; results (or an
    /// `Upstream` error) arrive on `sink` tagged `base_tag + column`.
    /// A non-zero `trace_id` must travel with the relayed request
    /// (`SolveTraced`) so the owner's hop lands under the same id.
    #[allow(clippy::too_many_arguments)]
    fn proxy_solve(
        &self,
        addr: &str,
        tenant: &str,
        key: PlanKey,
        cols: Vec<Vec<S>>,
        base_tag: u64,
        deadline_ms: u32,
        trace_id: u64,
        sink: &Arc<dyn ResponseSink<S>>,
    );
}

/// Handle for requesting a graceful drain from any thread.
#[derive(Clone)]
pub struct NetCtl {
    shared: Arc<CtlShared>,
}

struct CtlShared {
    drain: AtomicBool,
    wake: UnixStream,
}

impl NetCtl {
    /// Begin draining: new solves are refused with `ShuttingDown`, queued
    /// and in-flight solves complete and flush, then the event loop exits.
    pub fn shutdown(&self) {
        self.shared.drain.store(true, Ordering::Release);
        let _ = (&self.shared.wake).write(&[1u8]);
    }
}

type Completion<S> = (u64, Result<Vec<S>, ServeError>);

/// Completion mailbox the compute tier delivers into; doubles as the
/// service's [`ResponseSink`].
struct Completions<S> {
    queue: Mutex<VecDeque<Completion<S>>>,
    wake: UnixStream,
    wake_pending: AtomicBool,
}

impl<S: Scalar> ResponseSink<S> for Completions<S> {
    fn deliver(&self, tag: u64, result: Result<Vec<S>, ServeError>) {
        self.queue.lock().unwrap().push_back((tag, result));
        // Injected fault: the wake byte is lost (stalled self-pipe). The
        // completion is queued either way; `wake_pending` stays false so a
        // later completion still wakes, and the event loop's bounded poll
        // timeout sweeps the queue regardless.
        if recblock_faults::fires(recblock_faults::FaultPoint::NetWake) {
            return;
        }
        if !self.wake_pending.swap(true, Ordering::AcqRel) {
            let _ = (&self.wake).write(&[1u8]);
        }
    }
}

struct TenantState {
    name: String,
    policy: TenantPolicy,
    bucket: TokenBucket,
    counters: Arc<TenantCounters>,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Read side still open and parsing (false after EOF or a fatal
    /// protocol error).
    reading: bool,
    /// Close once the write buffer drains.
    close_after_flush: bool,
    /// Admitted requests whose answers will route to this connection.
    refs: usize,
    /// Interests currently registered with the poller.
    registered: (bool, bool),
}

/// One admitted solve awaiting dispatch.
struct QueuedSolve {
    slot: u32,
    deadline: Option<Instant>,
}

/// One admitted solve from admission until its response is written.
struct Inflight<S> {
    conn: u32,
    conn_gen: u32,
    client_tag: u64,
    tenant: u16,
    k: u16,
    /// Columns still owed a completion.
    remaining: u16,
    cols: Vec<Vec<S>>,
    key: PlanKey,
    plan: Option<Arc<RecBlockSolver<S>>>,
    error: Option<ErrCode>,
    /// Dynamic detail for the error reply (e.g. a forwarded upstream
    /// message); `None` falls back to the static [`msg_for`] text.
    error_msg: Option<String>,
    /// End-to-end trace id; 0 means "untraced" (the plain `Solve` path,
    /// which stays allocation-free — hop recording is skipped entirely).
    trace_id: u64,
    /// When admission accepted the request (spans are measured from here).
    admitted_at: Instant,
    /// Whether this node relayed the solve to the plan's owner.
    proxied: bool,
}

/// The TCP front end: owns the listener, all connections and the QoS
/// state; drives everything from [`NetServer::turn`].
pub struct NetServer<S: Scalar> {
    listener: TcpListener,
    poller: Poller,
    events: Vec<Event>,
    config: NetConfig,
    service: Arc<SolveService<S>>,
    metrics: Arc<Metrics>,

    conns: Vec<Option<Conn>>,
    conn_gens: Vec<u32>,
    free_conns: Vec<usize>,
    open_conns: usize,

    tenants: Vec<TenantState>,
    tenant_ids: HashMap<String, usize>,
    fair: FairQueue<QueuedSolve>,

    inflight: Vec<Option<Inflight<S>>>,
    free_slots: Vec<usize>,
    /// Columns admitted and not yet answered (queued + dispatched).
    admitted_cols: usize,
    /// Columns handed to the compute tier and not yet completed.
    dispatched_cols: usize,

    completions: Arc<Completions<S>>,
    sink: Arc<dyn ResponseSink<S>>,
    wake_rx: UnixStream,
    ctl: Arc<CtlShared>,

    vec_pool: Vec<Vec<S>>,
    colset_pool: Vec<Vec<Vec<S>>>,
    keys_warm: HashSet<PlanKey>,
    cluster: Option<Arc<dyn ClusterHooks<S>>>,
    /// splitmix64 state for minting trace ids (seeded per server so two
    /// nodes never mint colliding ids in practice).
    trace_seed: u64,
    trace_counter: u64,

    draining: bool,
    done: bool,
}

fn map_serve_err(e: &ServeError) -> ErrCode {
    match e {
        ServeError::Overloaded { .. } => ErrCode::Overloaded,
        ServeError::ShuttingDown => ErrCode::ShuttingDown,
        ServeError::BadRequest { .. } => ErrCode::BadRequest,
        ServeError::Upstream { code, .. } => ErrCode::from_u16(*code).unwrap_or(ErrCode::Internal),
        ServeError::PlanBuild(_)
        | ServeError::Solver(_)
        | ServeError::Cancelled
        | ServeError::WorkerPanic => ErrCode::Internal,
    }
}

/// Wire code plus the dynamic detail worth forwarding to the client
/// (upstream nodes already phrase their errors for end clients).
fn err_code_and_msg(e: &ServeError) -> (ErrCode, Option<String>) {
    match e {
        ServeError::Upstream { message, .. } => (map_serve_err(e), Some(message.clone())),
        other => (map_serve_err(other), None),
    }
}

fn msg_for(code: ErrCode) -> &'static str {
    match code {
        ErrCode::RateLimited => "tenant token bucket exhausted; back off and retry",
        ErrCode::Overloaded => "service queue full; nothing was enqueued",
        ErrCode::ShedCost => "tenant queued-cost budget exhausted",
        ErrCode::DeadlineExceeded => "deadline expired before dispatch",
        ErrCode::PlanNotFound => "no plan for this fingerprint; run planctl precompute",
        ErrCode::BadRequest => "request shape does not match the plan",
        ErrCode::ShuttingDown => "server is draining",
        ErrCode::UnknownTenant => "tenant not configured and no default policy",
        ErrCode::Malformed => "undecodable frame; closing connection",
        ErrCode::Internal => "internal solve failure",
        ErrCode::Timeout => "request timed out",
        ErrCode::Redirect => "fingerprint owned by another node",
        ErrCode::BuildInProgress => "plan build in progress elsewhere; retry after backoff",
    }
}

impl<S: Scalar> NetServer<S> {
    /// Bind a listener and construct the server around a running
    /// [`SolveService`]. The service is shared — its in-process API keeps
    /// working alongside the network front end.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: NetConfig,
        service: Arc<SolveService<S>>,
    ) -> io::Result<NetServer<S>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;

        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;

        let metrics = service.shared_metrics();
        let now = Instant::now();
        let mut tenants = Vec::new();
        let mut tenant_ids = HashMap::new();
        let mut fair = FairQueue::new();
        for (name, policy) in &config.tenants {
            let lane = fair.add_lane(policy.weight);
            debug_assert_eq!(lane, tenants.len());
            tenant_ids.insert(name.clone(), tenants.len());
            tenants.push(TenantState {
                name: name.clone(),
                policy: policy.clone(),
                bucket: TokenBucket::new(policy.rate_cost_per_sec, policy.burst_cost, now),
                counters: metrics.tenant(name),
            });
        }

        let completions = Arc::new(Completions {
            queue: Mutex::new(VecDeque::with_capacity(config.max_inflight + 16)),
            wake: wake_tx.try_clone()?,
            wake_pending: AtomicBool::new(false),
        });
        let sink: Arc<dyn ResponseSink<S>> = completions.clone();
        let ctl = Arc::new(CtlShared { drain: AtomicBool::new(false), wake: wake_tx });

        let conn_cap = config.max_connections.min(1 << 16);
        Ok(NetServer {
            listener,
            poller,
            events: Vec::with_capacity(256),
            inflight: Vec::with_capacity(config.max_inflight.min(1 << 20)),
            free_slots: Vec::with_capacity(config.max_inflight.min(1 << 20)),
            config,
            service,
            metrics,
            // Free lists are reserved up front so connection churn and
            // slot recycling never grow them on the hot path.
            conns: Vec::with_capacity(conn_cap),
            conn_gens: Vec::with_capacity(conn_cap),
            free_conns: Vec::with_capacity(conn_cap),
            open_conns: 0,
            tenants,
            tenant_ids,
            fair,
            admitted_cols: 0,
            dispatched_cols: 0,
            completions,
            sink,
            wake_rx,
            ctl,
            vec_pool: Vec::with_capacity(POOL_VECS),
            colset_pool: Vec::with_capacity(POOL_COLSETS),
            keys_warm: HashSet::new(),
            cluster: None,
            trace_seed: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9E37_79B9_7F4A_7C15)
                ^ ((std::process::id() as u64) << 32),
            trace_counter: 0,
            draining: false,
            done: false,
        })
    }

    /// Attach a cluster coordinator: solve requests are routed through
    /// [`ClusterHooks::route`] before the local plan path, and the v2
    /// membership/migration frames are accepted on this listener.
    pub fn with_cluster(mut self, hooks: Arc<dyn ClusterHooks<S>>) -> Self {
        let ring = hooks.ring_state();
        self.sync_cluster_gauges(&ring);
        self.cluster = Some(hooks);
        self
    }

    /// Address the listener bound to (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A cloneable handle that can request a graceful drain.
    pub fn ctl(&self) -> NetCtl {
        NetCtl { shared: self.ctl.clone() }
    }

    /// Drive the loop until drained. Equivalent to calling
    /// [`NetServer::turn`] forever.
    pub fn run(&mut self) -> io::Result<()> {
        while self.turn(Some(Duration::from_millis(500)))? {}
        Ok(())
    }

    /// One event-loop iteration: wait (up to `timeout`), service sockets,
    /// collect completions, dispatch under DRR order. Returns `false`
    /// once a requested drain has fully completed.
    pub fn turn(&mut self, timeout: Option<Duration>) -> io::Result<bool> {
        if self.done {
            return Ok(false);
        }
        if self.ctl.drain.load(Ordering::Acquire) {
            self.draining = true;
        }
        let mut events = std::mem::take(&mut self.events);
        self.poller.wait(&mut events, timeout)?;
        for &ev in &events {
            match ev.token {
                TOKEN_LISTENER => self.accept_all(),
                TOKEN_WAKE => self.drain_wake(),
                t => {
                    let idx = (t - TOKEN_BASE) as usize;
                    if ev.readable {
                        self.read_conn(idx);
                    }
                    if ev.writable {
                        self.flush_conn(idx);
                    }
                }
            }
        }
        self.events = events;
        self.handle_completions();
        self.dispatch();
        if self.draining && self.drained() {
            self.finish_drain();
            return Ok(false);
        }
        Ok(true)
    }

    fn drained(&self) -> bool {
        self.fair.is_empty()
            && self.admitted_cols == 0
            && self.conns.iter().flatten().all(|c| c.wpos >= c.wbuf.len())
    }

    fn finish_drain(&mut self) {
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.close_conn(idx);
            }
        }
        let _ = self.poller.remove(self.listener.as_raw_fd());
        self.done = true;
    }

    // ---- sockets ---------------------------------------------------------

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Injected fault: the peer vanished between accept and
                    // registration (RST under SYN flood). Drop and move on.
                    if recblock_faults::fires(recblock_faults::FaultPoint::NetAccept) {
                        drop(stream);
                        continue;
                    }
                    if self.open_conns >= self.config.max_connections || self.done {
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = match self.free_conns.pop() {
                        Some(i) => i,
                        None => {
                            self.conns.push(None);
                            self.conn_gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    let token = TOKEN_BASE + idx as u64;
                    if self.poller.add(stream.as_raw_fd(), token, true, false).is_err() {
                        self.free_conns.push(idx);
                        continue;
                    }
                    self.conns[idx] = Some(Conn {
                        stream,
                        rbuf: Vec::new(),
                        rpos: 0,
                        wbuf: Vec::new(),
                        wpos: 0,
                        reading: true,
                        close_after_flush: false,
                        refs: 0,
                        registered: (true, false),
                    });
                    self.open_conns += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn read_conn(&mut self, idx: usize) {
        let mut eof = false;
        let mut dead = false;
        {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if !conn.reading {
                return;
            }
            for _ in 0..MAX_READ_ROUNDS {
                // Injected fault: a spurious-wake/EAGAIN storm. Pretending
                // the socket had nothing is lossless — the poller is
                // level-triggered, so unread bytes re-raise the event.
                if recblock_faults::fires(recblock_faults::FaultPoint::NetRead) {
                    break;
                }
                let old = conn.rbuf.len();
                conn.rbuf.resize(old + READ_CHUNK, 0);
                match conn.stream.read(&mut conn.rbuf[old..]) {
                    Ok(0) => {
                        conn.rbuf.truncate(old);
                        eof = true;
                        break;
                    }
                    Ok(n) => conn.rbuf.truncate(old + n),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        conn.rbuf.truncate(old);
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        conn.rbuf.truncate(old);
                    }
                    Err(_) => {
                        conn.rbuf.truncate(old);
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_conn(idx);
            return;
        }
        self.process_frames(idx);
        if eof {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.reading = false;
            }
            self.maybe_close(idx);
        }
        self.update_interest(idx);
    }

    /// Decode and handle every complete frame buffered on `idx`.
    fn process_frames(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if !conn.reading {
                break;
            }
            // Take the read buffer so the payload can be borrowed while
            // `self` stays mutable (swap with an empty vec: no allocation).
            let rbuf = std::mem::take(&mut conn.rbuf);
            let rpos = conn.rpos;
            let outcome = frame::decode_header(&rbuf[rpos..], self.config.max_frame_bytes);
            let mut advance = 0usize;
            match outcome {
                Ok(None) => {}
                Ok(Some(h)) => {
                    let total = HEADER_LEN + h.payload_len as usize;
                    if rbuf.len() - rpos >= total {
                        advance = total;
                        let payload = &rbuf[rpos + HEADER_LEN..rpos + total];
                        self.handle_frame(idx, h, payload);
                    }
                }
                Err(e) => {
                    self.frame_error(idx, &e);
                }
            }
            let Some(conn) = self.conns[idx].as_mut() else { return };
            conn.rbuf = rbuf;
            if advance == 0 {
                break;
            }
            conn.rpos += advance;
        }
        // Compact the consumed prefix without reallocating.
        if let Some(conn) = self.conns[idx].as_mut() {
            if conn.rpos > 0 {
                let len = conn.rbuf.len();
                conn.rbuf.copy_within(conn.rpos..len, 0);
                conn.rbuf.truncate(len - conn.rpos);
                conn.rpos = 0;
            }
        }
    }

    /// A stream-level decode failure: answer with a typed error, stop
    /// parsing, close once the answer flushes (the stream cannot be
    /// resynchronised after bad bytes).
    fn frame_error(&mut self, idx: usize, _e: &FrameError) {
        self.reply_err(idx, 0, ErrCode::Malformed);
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.reading = false;
            conn.close_after_flush = true;
        }
        self.maybe_close(idx);
    }

    fn handle_frame(&mut self, idx: usize, h: Header, payload: &[u8]) {
        if !h.version_covers_kind() {
            // A v1-stamped header carrying a v2-only kind: the peer is
            // speaking a protocol older than the frame it sent. Answer
            // typed instead of tearing the connection down.
            self.reply_err_msg(
                idx,
                h.tag,
                ErrCode::BadRequest,
                "frame kind requires protocol v2 but header claims v1",
            );
            return;
        }
        match h.kind {
            FrameKind::Ping => {
                if let Some(conn) = self.conns[idx].as_mut() {
                    frame::encode_header(&mut conn.wbuf, FrameKind::Pong, h.tag, 0);
                }
                self.flush_conn(idx);
            }
            FrameKind::Stat => self.handle_stat(idx, h.tag),
            FrameKind::Solve => self.handle_solve(idx, h.tag, payload),
            FrameKind::SolveTraced => self.handle_solve_traced(idx, h.tag, payload),
            FrameKind::TraceGet => self.handle_trace_get(idx, h.tag, payload),
            FrameKind::Join => self.handle_join(idx, h.tag, payload),
            FrameKind::Leave => self.handle_leave(idx, h.tag, payload),
            FrameKind::RingState => self.handle_ring_state(idx, h.tag, payload),
            FrameKind::PlanPush => self.handle_plan_push(idx, h.tag, payload),
            FrameKind::PlanPull => self.handle_plan_pull(idx, h.tag, payload),
            FrameKind::SolveOk
            | FrameKind::Err
            | FrameKind::Pong
            | FrameKind::StatOk
            | FrameKind::PlanPushOk
            | FrameKind::PlanData
            | FrameKind::TraceData => {
                // Response kinds are server-to-client only.
                self.reply_err(idx, h.tag, ErrCode::BadRequest);
            }
        }
    }

    // ---- cluster frames --------------------------------------------------

    /// The coordinator, or a typed refusal when this node is not part
    /// of a cluster (v2 frames on a standalone server are not fatal).
    fn cluster_hooks(&mut self, idx: usize, tag: u64) -> Option<Arc<dyn ClusterHooks<S>>> {
        match self.cluster.clone() {
            Some(h) => Some(h),
            None => {
                self.reply_err_msg(
                    idx,
                    tag,
                    ErrCode::BadRequest,
                    "this node is not part of a cluster",
                );
                None
            }
        }
    }

    fn sync_cluster_gauges(&self, ring: &RingStateMsg) {
        self.metrics.cluster_ring_epoch.store(ring.epoch, Ordering::Relaxed);
        self.metrics.cluster_members.store(ring.members.len() as u64, Ordering::Relaxed);
    }

    fn send_ring_state(&mut self, idx: usize, tag: u64, ring: &RingStateMsg) {
        self.sync_cluster_gauges(ring);
        if let Some(conn) = self.conns[idx].as_mut() {
            frame::encode_ring_state(&mut conn.wbuf, tag, ring);
        }
        self.flush_conn(idx);
    }

    fn handle_join(&mut self, idx: usize, tag: u64, payload: &[u8]) {
        let Some(hooks) = self.cluster_hooks(idx, tag) else { return };
        let member = match frame::parse_join(payload) {
            Ok(m) => m,
            Err(_) => {
                self.reply_err(idx, tag, ErrCode::Malformed);
                return;
            }
        };
        let ring = hooks.handle_join(member);
        self.send_ring_state(idx, tag, &ring);
    }

    fn handle_leave(&mut self, idx: usize, tag: u64, payload: &[u8]) {
        let Some(hooks) = self.cluster_hooks(idx, tag) else { return };
        let ring = match frame::parse_leave(payload) {
            Ok(name) => hooks.handle_leave(name),
            Err(_) => {
                self.reply_err(idx, tag, ErrCode::Malformed);
                return;
            }
        };
        self.send_ring_state(idx, tag, &ring);
    }

    fn handle_ring_state(&mut self, idx: usize, tag: u64, payload: &[u8]) {
        let Some(hooks) = self.cluster_hooks(idx, tag) else { return };
        let ring = match frame::parse_ring_state(payload) {
            Ok(msg) => hooks.apply_ring(msg),
            Err(_) => {
                self.reply_err(idx, tag, ErrCode::Malformed);
                return;
            }
        };
        // The reply carries our post-merge view: the sender learns
        // anything we knew that it did not (anti-entropy).
        self.send_ring_state(idx, tag, &ring);
    }

    fn handle_plan_push(&mut self, idx: usize, tag: u64, payload: &[u8]) {
        let Some(hooks) = self.cluster_hooks(idx, tag) else { return };
        let transfer = match frame::parse_plan_transfer(payload) {
            Ok(t) => t,
            Err(_) => {
                self.reply_err(idx, tag, ErrCode::Malformed);
                return;
            }
        };
        match hooks.accept_plan_push(transfer.key, transfer.bytes) {
            Ok(()) => {
                self.metrics.cluster_plans_received.fetch_add(1, Ordering::Relaxed);
                self.keys_warm.insert(transfer.key);
                if let Some(conn) = self.conns[idx].as_mut() {
                    frame::encode_header(&mut conn.wbuf, FrameKind::PlanPushOk, tag, 0);
                }
                self.flush_conn(idx);
            }
            Err((code, msg)) => self.reply_err_msg(idx, tag, code, &msg),
        }
    }

    fn handle_plan_pull(&mut self, idx: usize, tag: u64, payload: &[u8]) {
        let Some(hooks) = self.cluster_hooks(idx, tag) else { return };
        let (key, intent) = match frame::parse_plan_pull(payload) {
            Ok(p) => p,
            Err(_) => {
                self.reply_err(idx, tag, ErrCode::Malformed);
                return;
            }
        };
        match hooks.plan_data(key, intent) {
            Ok(bytes) => {
                self.metrics.cluster_plans_served.fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = self.conns[idx].as_mut() {
                    frame::encode_plan_data(&mut conn.wbuf, tag, &key, &bytes);
                }
                self.flush_conn(idx);
            }
            Err((code, msg)) => self.reply_err_msg(idx, tag, code, &msg),
        }
    }

    fn handle_stat(&mut self, idx: usize, tag: u64) {
        // Health folds the front end's own drain state in: the serve tier
        // only knows it is draining once `SolveService::drain` runs, which
        // happens after this loop empties.
        let health =
            if self.draining { recblock_serve::Health::Draining } else { self.service.health() };
        let mut stat = StatReply {
            draining: self.draining,
            health: health as u8,
            plans_warm: self.keys_warm.len() as u32,
            inflight: self.dispatched_cols as u32,
            tenants: Vec::with_capacity(self.tenants.len()),
        };
        for t in &self.tenants {
            let c = &t.counters;
            let ld = Ordering::Relaxed;
            stat.tenants.push(TenantStat {
                tenant: t.name.clone(),
                queue_depth: c.queue_depth.load(ld),
                admitted: c.admitted.load(ld),
                completed: c.completed.load(ld),
                admission_rejected: c.admission_rejected.load(ld),
                shed: c.shed_by_cost.load(ld) + c.shed_by_deadline.load(ld),
            });
        }
        stat.tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        if let Some(conn) = self.conns[idx].as_mut() {
            frame::encode_stat_reply(&mut conn.wbuf, tag, &stat);
        }
        self.flush_conn(idx);
    }

    // ---- tracing ---------------------------------------------------------

    /// Mint a fresh non-zero trace id (splitmix64 over a per-server seed).
    fn mint_trace_id(&mut self) -> u64 {
        self.trace_counter += 1;
        let mut z =
            self.trace_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.trace_counter));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let id = z ^ (z >> 31);
        id.max(1)
    }

    fn handle_trace_get(&mut self, idx: usize, tag: u64, payload: &[u8]) {
        let key = match frame::parse_trace_get(payload) {
            Ok(k) => k,
            Err(_) => {
                self.reply_err(idx, tag, ErrCode::Malformed);
                return;
            }
        };
        let hops: Vec<TraceHopMsg> = self
            .metrics
            .trace_hops_for(&key)
            .into_iter()
            .map(|h| TraceHopMsg {
                trace_id: h.trace_id,
                node: h.node,
                tenant: h.tenant,
                k: h.k,
                solve_ns: h.solve_ns,
                respond_ns: h.respond_ns,
                total_ns: h.total_ns,
                proxied: h.proxied,
            })
            .collect();
        if let Some(conn) = self.conns[idx].as_mut() {
            frame::encode_trace_data(&mut conn.wbuf, tag, &hops);
        }
        self.flush_conn(idx);
    }

    // ---- admission -------------------------------------------------------

    fn handle_solve(&mut self, idx: usize, tag: u64, payload: &[u8]) {
        match frame::parse_solve(payload) {
            // Plain solves are untraced (trace id 0): their steady-state
            // path stays allocation-free.
            Ok(req) => self.admit_solve(idx, tag, 0, &req),
            Err(_) => {
                // The frame boundary itself was sound (header length
                // matched), so the connection survives a bad payload.
                self.reply_err(idx, tag, ErrCode::Malformed);
            }
        }
    }

    fn handle_solve_traced(&mut self, idx: usize, tag: u64, payload: &[u8]) {
        match frame::parse_solve_traced(payload) {
            Ok((trace_id, req)) => {
                // A zero id asks this node to mint one (the client cannot
                // pick ids — proxy hops forward the minted id instead).
                let trace_id = if trace_id == 0 { self.mint_trace_id() } else { trace_id };
                self.admit_solve(idx, tag, trace_id, &req);
            }
            Err(_) => {
                self.reply_err(idx, tag, ErrCode::Malformed);
            }
        }
    }

    fn admit_solve(&mut self, idx: usize, tag: u64, trace_id: u64, req: &frame::SolveRequest<'_>) {
        let Some(t) = self.tenant_id(req.tenant) else {
            self.reply_err(idx, tag, ErrCode::UnknownTenant);
            return;
        };
        if self.draining {
            self.reply_err(idx, tag, ErrCode::ShuttingDown);
            return;
        }
        if req.width as usize != S::BYTES
            || req.k > self.config.max_rhs_per_request
            || req.n > usize::MAX as u64
        {
            self.reply_err(idx, tag, ErrCode::BadRequest);
            return;
        }
        // Cluster routing happens before the local plan path: a
        // non-owner either relays to the owner or redirects the client,
        // so plans only ever materialise on the nodes the ring assigns.
        if let Some(hooks) = self.cluster.clone() {
            match hooks.route(&req.key) {
                Route::Local => {}
                Route::Redirect(addr) => {
                    self.metrics.cluster_redirects.fetch_add(1, Ordering::Relaxed);
                    self.reply_err_msg(idx, tag, ErrCode::Redirect, &addr);
                    return;
                }
                Route::Proxy(addr) => {
                    self.proxy_solve(idx, tag, t, req, &addr, trace_id, &hooks);
                    return;
                }
            }
        }
        let plan = match self.service.resolve_key(req.key) {
            Ok(Some((plan, _src))) => plan,
            Ok(None) => {
                self.reply_err(idx, tag, ErrCode::PlanNotFound);
                return;
            }
            Err(e) => {
                self.reply_err(idx, tag, map_serve_err(&e));
                return;
            }
        };
        if plan.n() != req.n as usize {
            self.reply_err(idx, tag, ErrCode::BadRequest);
            return;
        }
        self.keys_warm.insert(req.key);

        let cost = req.cost();
        let now = Instant::now();
        let tenant = &mut self.tenants[t];
        if !tenant.bucket.try_take(cost as f64, now) {
            tenant.counters.admission_rejected.fetch_add(1, Ordering::Relaxed);
            self.reply_err(idx, tag, ErrCode::RateLimited);
            return;
        }
        if self.fair.lane_cost(t) + cost as f64 > tenant.policy.max_queued_cost {
            tenant.counters.shed_by_cost.fetch_add(1, Ordering::Relaxed);
            self.reply_err(idx, tag, ErrCode::ShedCost);
            return;
        }
        if self.admitted_cols + req.k as usize > self.config.max_inflight {
            self.reply_err(idx, tag, ErrCode::Overloaded);
            return;
        }

        // Admitted: copy the value columns into pooled buffers.
        let mut cols = self.colset_pool.pop().unwrap_or_default();
        cols.clear();
        for j in 0..req.k as usize {
            let mut v = self.vec_pool.pop().unwrap_or_default();
            if frame::decode_scalars::<S>(req.col_bytes(j), req.width, &mut v).is_err() {
                unreachable!("width checked above");
            }
            cols.push(v);
        }
        let deadline_ms = if req.deadline_ms > 0 {
            req.deadline_ms
        } else {
            self.tenants[t].policy.default_deadline_ms
        };
        let deadline = (deadline_ms > 0).then(|| now + Duration::from_millis(deadline_ms.into()));

        let slot = self.alloc_slot(Inflight {
            conn: idx as u32,
            conn_gen: self.conn_gens[idx],
            client_tag: tag,
            tenant: t as u16,
            k: req.k,
            remaining: req.k,
            cols,
            key: req.key,
            plan: Some(plan),
            error: None,
            error_msg: None,
            trace_id,
            admitted_at: now,
            proxied: false,
        });
        self.admitted_cols += req.k as usize;
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.refs += 1;
        }
        self.fair.push(t, cost as f64, QueuedSolve { slot, deadline });
        let counters = &self.tenants[t].counters;
        counters.admitted.fetch_add(1, Ordering::Relaxed);
        counters.admitted_cost.fetch_add(cost, Ordering::Relaxed);
        counters.queue_depth.store(self.fair.lane_depth(t) as u64, Ordering::Relaxed);
    }

    /// Admit a solve that a peer node will compute: allocate an
    /// in-flight slot so the answer routes back through the normal
    /// completion path, then hand the columns to the coordinator's
    /// proxy workers. Admission still charges this tenant's token
    /// bucket — the proxy consumes this node's sockets and buffers.
    #[allow(clippy::too_many_arguments)]
    fn proxy_solve(
        &mut self,
        idx: usize,
        tag: u64,
        t: usize,
        req: &frame::SolveRequest<'_>,
        addr: &str,
        trace_id: u64,
        hooks: &Arc<dyn ClusterHooks<S>>,
    ) {
        let cost = req.cost();
        let now = Instant::now();
        let tenant = &mut self.tenants[t];
        if !tenant.bucket.try_take(cost as f64, now) {
            tenant.counters.admission_rejected.fetch_add(1, Ordering::Relaxed);
            self.reply_err(idx, tag, ErrCode::RateLimited);
            return;
        }
        if self.admitted_cols + req.k as usize > self.config.max_inflight {
            self.reply_err(idx, tag, ErrCode::Overloaded);
            return;
        }
        let mut cols = Vec::with_capacity(req.k as usize);
        let mut placeholders = self.colset_pool.pop().unwrap_or_default();
        placeholders.clear();
        for j in 0..req.k as usize {
            let mut v = self.vec_pool.pop().unwrap_or_default();
            if frame::decode_scalars::<S>(req.col_bytes(j), req.width, &mut v).is_err() {
                unreachable!("width checked above");
            }
            cols.push(v);
            placeholders.push(Vec::new());
        }
        let deadline_ms = if req.deadline_ms > 0 {
            req.deadline_ms
        } else {
            self.tenants[t].policy.default_deadline_ms
        };
        let slot = self.alloc_slot(Inflight {
            conn: idx as u32,
            conn_gen: self.conn_gens[idx],
            client_tag: tag,
            tenant: t as u16,
            k: req.k,
            remaining: req.k,
            cols: placeholders,
            key: req.key,
            plan: None,
            error: None,
            error_msg: None,
            trace_id,
            admitted_at: now,
            proxied: true,
        });
        self.admitted_cols += req.k as usize;
        // The columns are "dispatched" to the proxy tier: completions
        // decrement this exactly like compute-tier completions.
        self.dispatched_cols += req.k as usize;
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.refs += 1;
        }
        let counters = &self.tenants[t].counters;
        counters.admitted.fetch_add(1, Ordering::Relaxed);
        counters.admitted_cost.fetch_add(cost, Ordering::Relaxed);
        self.metrics.cluster_proxied.fetch_add(1, Ordering::Relaxed);
        let base_tag = (slot as u64) << 32;
        let tenant_name = self.tenants[t].name.clone();
        hooks.proxy_solve(
            addr,
            &tenant_name,
            req.key,
            cols,
            base_tag,
            deadline_ms,
            trace_id,
            &self.sink,
        );
    }

    /// Resolve a tenant name to its lane, registering it under the default
    /// policy when allowed.
    fn tenant_id(&mut self, name: &str) -> Option<usize> {
        if let Some(&t) = self.tenant_ids.get(name) {
            return Some(t);
        }
        let policy = self.config.default_policy.clone()?;
        let lane = self.fair.add_lane(policy.weight);
        debug_assert_eq!(lane, self.tenants.len());
        self.tenant_ids.insert(name.to_string(), lane);
        let now = Instant::now();
        self.tenants.push(TenantState {
            name: name.to_string(),
            bucket: TokenBucket::new(policy.rate_cost_per_sec, policy.burst_cost, now),
            counters: self.metrics.tenant(name),
            policy,
        });
        Some(lane)
    }

    fn alloc_slot(&mut self, inf: Inflight<S>) -> u32 {
        match self.free_slots.pop() {
            Some(i) => {
                self.inflight[i] = Some(inf);
                i as u32
            }
            None => {
                self.inflight.push(Some(inf));
                (self.inflight.len() - 1) as u32
            }
        }
    }

    // ---- dispatch --------------------------------------------------------

    /// Hand queued solves to the compute tier in DRR order, stopping at
    /// the per-turn burst or when the compute queue has no room — queued
    /// work then waits in the fair queue, which stays the arbiter of
    /// inter-tenant order.
    fn dispatch(&mut self) {
        let mut budget = self.config.dispatch_burst;
        while budget > 0 {
            let Some((lane, cost, q)) = self.fair.pop() else { break };
            self.store_lane_depth(lane);

            if q.deadline.is_some_and(|d| Instant::now() > d) {
                self.tenants[lane].counters.shed_by_deadline.fetch_add(1, Ordering::Relaxed);
                self.fail_slot(q.slot, ErrCode::DeadlineExceeded);
                continue;
            }

            let slot = q.slot as usize;
            let (key, plan, k) = {
                let inf = self.inflight[slot].as_ref().expect("queued slot live");
                (inf.key, inf.plan.clone().expect("plan held until dispatch"), inf.k)
            };
            if self.service.queue_available() < k as usize {
                // Hold the whole request; retry next turn.
                self.fair.push_front(lane, cost, q);
                self.store_lane_depth(lane);
                break;
            }
            budget -= 1;

            let mut submitted = 0u16;
            let mut failure: Option<ErrCode> = None;
            for j in 0..k {
                let rhs = {
                    let inf = self.inflight[slot].as_mut().expect("slot live");
                    std::mem::take(&mut inf.cols[j as usize])
                };
                let tag = ((q.slot as u64) << 32) | j as u64;
                // The capacity pre-check makes failure here exceptional
                // (a racing in-process submitter filled the queue); the
                // column buffer is consumed either way.
                match self.service.submit_routed(key, &plan, rhs, tag, &self.sink) {
                    Ok(()) => submitted += 1,
                    Err(e) => {
                        failure = Some(map_serve_err(&e));
                        break;
                    }
                }
            }
            self.dispatched_cols += submitted as usize;
            let inf = self.inflight[slot].as_mut().expect("slot live");
            if let Some(code) = failure {
                // The submitted columns still complete; the response then
                // becomes the recorded error.
                inf.error = Some(code);
                inf.remaining = submitted;
                if submitted == 0 {
                    self.fail_slot(q.slot, code);
                }
            } else {
                // Fully dispatched; the plan reference is no longer needed.
                inf.plan = None;
            }
        }
    }

    fn store_lane_depth(&self, lane: usize) {
        self.tenants[lane]
            .counters
            .queue_depth
            .store(self.fair.lane_depth(lane) as u64, Ordering::Relaxed);
    }

    // ---- completions -----------------------------------------------------

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        self.completions.wake_pending.store(false, Ordering::Release);
    }

    fn handle_completions(&mut self) {
        loop {
            let item = self.completions.queue.lock().unwrap().pop_front();
            let Some((tag, result)) = item else { break };
            let slot = (tag >> 32) as usize;
            let j = (tag & u32::MAX as u64) as usize;
            self.dispatched_cols -= 1;
            let finished = {
                let inf = self.inflight[slot].as_mut().expect("completion for live slot");
                match result {
                    Ok(x) => inf.cols[j] = x,
                    Err(e) => {
                        if inf.error.is_none() {
                            if matches!(e, ServeError::Upstream { .. }) {
                                self.metrics.cluster_proxy_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            let (code, msg) = err_code_and_msg(&e);
                            inf.error = Some(code);
                            inf.error_msg = msg;
                        }
                    }
                }
                inf.remaining -= 1;
                inf.remaining == 0
            };
            if finished {
                self.finish_slot(slot as u32);
            }
        }
    }

    /// Answer a slot that never reached the compute tier with an error.
    fn fail_slot(&mut self, slot: u32, code: ErrCode) {
        {
            let inf = self.inflight[slot as usize].as_mut().expect("slot live");
            inf.error = Some(code);
            inf.remaining = 0;
        }
        self.finish_slot(slot);
    }

    /// All columns of `slot` are accounted for: write the response (if the
    /// connection is still the one that asked), recycle buffers, free the
    /// slot.
    fn finish_slot(&mut self, slot: u32) {
        let mut inf = self.inflight[slot as usize].take().expect("slot live");
        self.free_slots.push(slot as usize);
        self.admitted_cols -= inf.k as usize;
        let solved_at = Instant::now();

        let counters = self.tenants[inf.tenant as usize].counters.clone();
        let cidx = inf.conn as usize;
        let alive = self.conn_gens.get(cidx) == Some(&inf.conn_gen) && self.conns[cidx].is_some();
        match inf.error {
            Some(code) => {
                counters.failed.fetch_add(1, Ordering::Relaxed);
                if alive {
                    match inf.error_msg.take() {
                        Some(m) => self.reply_err_msg(cidx, inf.client_tag, code, &m),
                        None => self.reply_err(cidx, inf.client_tag, code),
                    }
                }
            }
            None => {
                counters.completed.fetch_add(1, Ordering::Relaxed);
                if alive {
                    let conn = self.conns[cidx].as_mut().expect("alive");
                    frame::encode_solve_ok(&mut conn.wbuf, inf.client_tag, &inf.cols);
                    self.flush_conn(cidx);
                }
            }
        }
        // Traced request: stamp the per-node hop. `solve_ns` is the span
        // a caller waits on (admission → last column completed, queueing
        // included); `respond_ns` covers encoding and flushing the reply.
        // Untraced requests (trace id 0) skip this entirely, keeping the
        // plain-solve path allocation-free.
        if inf.trace_id != 0 {
            let responded_at = Instant::now();
            self.metrics.record_trace_hop(TraceHop {
                trace_id: inf.trace_id,
                key: inf.key,
                node: self.config.node_name.clone(),
                tenant: self.tenants[inf.tenant as usize].name.clone(),
                k: inf.k,
                solve_ns: solved_at.duration_since(inf.admitted_at).as_nanos() as u64,
                respond_ns: responded_at.duration_since(solved_at).as_nanos() as u64,
                total_ns: responded_at.duration_since(inf.admitted_at).as_nanos() as u64,
                proxied: inf.proxied,
            });
        }
        // Recycle buffers (bounded pools).
        for mut v in inf.cols.drain(..) {
            if self.vec_pool.len() < POOL_VECS {
                v.clear();
                self.vec_pool.push(v);
            }
        }
        if self.colset_pool.len() < POOL_COLSETS {
            self.colset_pool.push(inf.cols);
        }
        if alive {
            if let Some(conn) = self.conns[cidx].as_mut() {
                conn.refs -= 1;
            }
            self.maybe_close(cidx);
        }
    }

    // ---- writing ---------------------------------------------------------

    fn reply_err(&mut self, idx: usize, tag: u64, code: ErrCode) {
        if let Some(conn) = self.conns[idx].as_mut() {
            frame::encode_err(&mut conn.wbuf, tag, code, msg_for(code));
        }
        self.flush_conn(idx);
    }

    /// Like [`NetServer::reply_err`] but with a dynamic message —
    /// `Redirect` carries the owner's address, proxied errors carry the
    /// upstream node's wording.
    fn reply_err_msg(&mut self, idx: usize, tag: u64, code: ErrCode, msg: &str) {
        if let Some(conn) = self.conns[idx].as_mut() {
            frame::encode_err(&mut conn.wbuf, tag, code, msg);
        }
        self.flush_conn(idx);
    }

    /// Write as much of the buffer as the socket takes right now, then
    /// register write interest for the rest.
    fn flush_conn(&mut self, idx: usize) {
        let mut close = false;
        {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            loop {
                if conn.wpos >= conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    if conn.close_after_flush && conn.refs == 0 {
                        close = true;
                    }
                    break;
                }
                // Injected fault: the socket pretends to be full. The
                // pending bytes register write interest below and the
                // level-triggered poller retries the flush.
                if recblock_faults::fires(recblock_faults::FaultPoint::NetWrite) {
                    break;
                }
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => conn.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close && conn.wbuf.len() - conn.wpos > self.config.max_write_buffer {
                // The peer reads slower than it submits; cut it loose.
                close = true;
            }
        }
        if close {
            self.close_conn(idx);
        } else {
            self.update_interest(idx);
        }
    }

    /// Re-register poller interests when they changed: read while parsing,
    /// write while bytes are pending.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let want = (conn.reading, conn.wpos < conn.wbuf.len());
        if want != conn.registered {
            let token = TOKEN_BASE + idx as u64;
            if self.poller.modify(conn.stream.as_raw_fd(), token, want.0, want.1).is_ok() {
                conn.registered = want;
            }
        }
    }

    /// Close a connection that is finished: not reading, nothing buffered,
    /// no admitted requests still routing to it.
    fn maybe_close(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_ref() else { return };
        if !conn.reading && conn.wpos >= conn.wbuf.len() && conn.refs == 0 {
            self.close_conn(idx);
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            self.conn_gens[idx] = self.conn_gens[idx].wrapping_add(1);
            self.free_conns.push(idx);
            self.open_conns -= 1;
        }
    }
}
