//! Worker-panic containment under deterministic fault injection.
//!
//! Compiled only with `--features faults`. The fault plan is process
//! global, so every test here serializes on one mutex and clears the plan
//! before releasing it — and these tests live in their own binary so no
//! unrelated test can trip an armed fault point.

#![cfg(feature = "faults")]

use recblock_faults::{FaultPlan, FaultPoint, Trigger};
use recblock_matrix::generate;
use recblock_serve::{Health, PlanSource, ServeConfig, ServeError, SolveService, StoreOptions};
use std::sync::{Mutex, MutexGuard};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rbfault-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn injected_dispatch_panic_is_contained_and_typed() {
    let _serial = fault_lock();
    let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
    let l = generate::random_lower::<f64>(200, 3.0, 93);
    service.warm(&l).unwrap();
    let b: Vec<f64> = (0..200).map(|i| (i as f64 * 0.03).cos()).collect();
    let expected = service.submit(&l, b.clone()).unwrap().wait().unwrap();

    FaultPlan::new(7).with(FaultPoint::ServeDispatch, Trigger::OneShot).install();
    let err = service.submit(&l, b.clone()).unwrap().wait().unwrap_err();
    assert_eq!(err, ServeError::WorkerPanic, "poisoned batch answers with a typed error");
    assert_eq!(service.health(), Health::Degraded, "a contained panic degrades health");

    // The same worker thread answers the next request, bit-identically.
    let x = service.submit(&l, b.clone()).unwrap().wait().unwrap();
    assert_eq!(x, expected);
    FaultPlan::clear();

    let stats = service.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 1);
}

#[test]
fn every_request_in_a_poisoned_batch_gets_an_answer() {
    let _serial = fault_lock();
    // Zero workers while submitting, so all requests coalesce into one
    // batch; then a single worker drains it under an armed fault.
    let service =
        SolveService::<f64>::new(ServeConfig::default().with_workers(1).with_max_batch(8));
    let l = generate::random_lower::<f64>(150, 3.0, 94);
    service.warm(&l).unwrap();

    FaultPlan::new(11).with(FaultPoint::ServeDispatch, Trigger::OneShot).install();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let b: Vec<f64> = (0..150).map(|r| ((r + i * 13) as f64 * 0.02).sin()).collect();
            service.submit(&l, b).unwrap()
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    FaultPlan::clear();

    // Exactly one batch was poisoned; every request in it got the typed
    // error and none were dropped. Requests outside it succeeded.
    let panicked = outcomes.iter().filter(|o| **o == Err(ServeError::WorkerPanic)).count();
    let solved = outcomes.iter().filter(|o| o.is_ok()).count();
    assert_eq!(panicked + solved, 4, "no request may vanish");
    assert!(panicked >= 1, "the armed one-shot fault must fire");

    let stats = service.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.failed as usize, panicked);
    assert_eq!(stats.completed as usize, solved);
}

#[test]
fn torn_write_back_is_retried_and_in_memory_plan_keeps_serving() {
    let _serial = fault_lock();
    let tmp = TempDir::new("tornwb");
    // Canary tuning on: a measured winner goes through the same verified
    // write-back as the initial build, so the armed tear covers the
    // tuned-plan path whenever one wins.
    let service = SolveService::<f64>::new(
        ServeConfig::default()
            .with_workers(1)
            .with_canary_tune(true)
            .with_store_options(StoreOptions::new(&tmp.0).with_warm_start(false)),
    );
    let l = generate::random_lower::<f64>(400, 4.0, 96);
    let b: Vec<f64> = (0..400).map(|i| (i as f64 * 0.017).sin()).collect();

    // Tear exactly one store write: the writer's post-write verification
    // must catch the silent corruption and rewrite the file in place —
    // never leave it for the boot-time scan to quarantine.
    FaultPlan::new(17).with(FaultPoint::StoreWrite, Trigger::OneShot).install();
    let expected = service.submit(&l, b.clone()).unwrap().wait().unwrap();
    // Drive the canary to its verdict; the in-memory plan (tuned or not)
    // serves bit-identically the whole time, torn disk state and all.
    for _ in 0..12 {
        let x = service.submit(&l, b.clone()).unwrap().wait().unwrap();
        assert_eq!(x, expected, "a torn write-back must be invisible to solves");
        service.flush_tuning();
    }
    service.flush_store();
    FaultPlan::clear();

    let stats = service.shutdown();
    assert!(stats.store_writes >= 1, "the retried write must eventually land");
    assert!(stats.tune_write_back_retries >= 1, "the torn attempt must be retried");
    assert_eq!(stats.store_quarantined, 0, "retry beats quarantine");

    // The on-disk plan is whole: a fresh service loads it (no quarantine,
    // no rebuild) and solves bit-identically.
    let second = SolveService::<f64>::new(
        ServeConfig::default()
            .with_workers(1)
            .with_store_options(StoreOptions::new(&tmp.0).with_warm_start(false)),
    );
    assert_eq!(second.warm_status(&l).unwrap(), PlanSource::Store);
    let x = second.submit(&l, b).unwrap().wait().unwrap();
    assert_eq!(x, expected);
    let stats = second.shutdown();
    assert_eq!(stats.store_quarantined, 0);
    assert_eq!(stats.plan_builds, 0, "the retried file must decode, not rebuild");
}

#[test]
fn slow_solve_injection_delays_but_never_corrupts() {
    let _serial = fault_lock();
    let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
    let l = generate::random_lower::<f64>(300, 4.0, 95);
    service.warm(&l).unwrap();
    let b: Vec<f64> = (0..300).map(|i| (i as f64 * 0.011).sin()).collect();
    let expected = service.submit(&l, b.clone()).unwrap().wait().unwrap();

    // Injected stragglers (sleeping chunks) stretch the solve but must
    // not change a single bit of the answer.
    FaultPlan::new(13).with(FaultPoint::ExecSlow, Trigger::Prob(0.5)).install();
    for _ in 0..3 {
        let x = service.submit(&l, b.clone()).unwrap().wait().unwrap();
        assert_eq!(x, expected, "stragglers must be invisible in the output");
    }
    FaultPlan::clear();
    assert_eq!(service.health(), Health::Healthy, "slow is not degraded");
    service.shutdown();
}
