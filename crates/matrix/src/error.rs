//! Error type shared by the sparse-matrix substrate.

use std::fmt;

/// Errors produced while constructing, converting or reading sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// An index array refers to a row/column outside the matrix dimensions.
    IndexOutOfBounds {
        /// Human-readable description of which array was invalid.
        what: &'static str,
        /// The offending index value.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// A pointer array (`row_ptr`/`col_ptr`) is not monotonically
    /// non-decreasing, has the wrong length, or does not end at `nnz`.
    MalformedPointer(&'static str),
    /// Column (or row) indices within a row (or column) are not strictly
    /// increasing.
    UnsortedIndices {
        /// The row or column in which the violation occurred.
        lane: usize,
    },
    /// The matrix was expected to be (lower/upper) triangular but is not.
    NotTriangular {
        /// Row of the violating entry.
        row: usize,
        /// Column of the violating entry.
        col: usize,
    },
    /// A diagonal entry needed for a triangular solve is missing or zero.
    SingularDiagonal {
        /// Row whose diagonal is missing/zero.
        row: usize,
    },
    /// Dimension mismatch between operands (e.g. matrix and vector).
    DimensionMismatch {
        /// What was being combined.
        what: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// A permutation array is not a bijection on `0..n`.
    InvalidPermutation(&'static str),
    /// The same (row, column) coordinate appears more than once in the
    /// input (0-based coordinates; for symmetric Matrix Market files this
    /// includes the mirrored position of an off-diagonal entry).
    DuplicateEntry {
        /// Row of the repeated coordinate.
        row: usize,
        /// Column of the repeated coordinate.
        col: usize,
    },
    /// Matrix Market parsing failure.
    Parse(String),
    /// Underlying I/O failure (message-only so the error stays `Clone`/`Eq`).
    Io(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what}: index {index} out of bounds (< {bound} required)")
            }
            MatrixError::MalformedPointer(what) => write!(f, "malformed pointer array: {what}"),
            MatrixError::UnsortedIndices { lane } => {
                write!(f, "indices within lane {lane} are not strictly increasing")
            }
            MatrixError::NotTriangular { row, col } => {
                write!(f, "entry ({row}, {col}) violates the requested triangular shape")
            }
            MatrixError::SingularDiagonal { row } => {
                write!(f, "missing or zero diagonal at row {row}")
            }
            MatrixError::DimensionMismatch { what, expected, actual } => {
                write!(f, "dimension mismatch in {what}: expected {expected}, got {actual}")
            }
            MatrixError::InvalidPermutation(what) => write!(f, "invalid permutation: {what}"),
            MatrixError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            MatrixError::Parse(msg) => write!(f, "parse error: {msg}"),
            MatrixError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MatrixError::IndexOutOfBounds { what: "col_idx", index: 9, bound: 5 };
        assert!(e.to_string().contains("col_idx"));
        assert!(e.to_string().contains('9'));

        let e = MatrixError::SingularDiagonal { row: 3 };
        assert!(e.to_string().contains("diagonal"));

        let e = MatrixError::DimensionMismatch { what: "spmv", expected: 4, actual: 5 };
        assert!(e.to_string().contains("spmv"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: MatrixError = io.into();
        assert!(matches!(e, MatrixError::Io(_)));
    }
}
