//! Level-set analysis of lower-triangular systems.
//!
//! The classic construction of Anderson & Saad and Saltz (Section 2.1.2 of
//! the paper): seeing `L` as a dependency DAG, component `i` is placed in
//! level `1 + max(level of its dependencies)`. All components of a level can
//! be solved in parallel; levels must run in order.
//!
//! The paper uses this analysis three ways, all served by this module:
//! * the level-set SpTRSV kernel consumes [`LevelSets::level_items`],
//! * the adaptive selector reads `nlevels` (Figure 5(a)),
//! * the improved recursive block format reorders rows/columns by level
//!   ([`LevelSets::permutation`], Section 3.3 / Figure 3).

use crate::csr::Csr;
use crate::error::MatrixError;
use crate::permute::Permutation;
use crate::scalar::Scalar;
use crate::triangular::check_solvable_lower;

/// The level-set decomposition of a lower-triangular matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSets {
    /// `level_ptr[l]..level_ptr[l+1]` indexes `items` for level `l`.
    level_ptr: Vec<usize>,
    /// Component indices grouped by level; within a level, ascending.
    items: Vec<usize>,
    /// `level_of[i]` is the level of component `i`.
    level_of: Vec<usize>,
}

impl LevelSets {
    /// Analyse a solvable lower-triangular CSR matrix.
    pub fn analyse<S: Scalar>(l: &Csr<S>) -> Result<Self, MatrixError> {
        check_solvable_lower(l)?;
        Ok(Self::analyse_unchecked(l))
    }

    /// Analyse without the solvability precheck. The matrix must be lower
    /// triangular (entries with `col > row` would be ignored silently).
    pub fn analyse_unchecked<S: Scalar>(l: &Csr<S>) -> Self {
        let n = l.nrows();
        let mut level_of = vec![0usize; n];
        let mut nlevels = 0usize;
        for i in 0..n {
            let (cols, _) = l.row(i);
            let mut lvl = 0usize;
            for &j in cols {
                if j < i {
                    let cand = level_of[j] + 1;
                    if cand > lvl {
                        lvl = cand;
                    }
                }
            }
            level_of[i] = lvl;
            if lvl + 1 > nlevels {
                nlevels = lvl + 1;
            }
        }
        if n == 0 {
            return LevelSets { level_ptr: vec![0], items: Vec::new(), level_of };
        }
        // Counting sort components by level; stable, so components within a
        // level keep their original ascending order ("physically moved
        // together", Section 3.3).
        let mut level_ptr = vec![0usize; nlevels + 1];
        for &lvl in &level_of {
            level_ptr[lvl + 1] += 1;
        }
        for l in 0..nlevels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut items = vec![0usize; n];
        let mut next = level_ptr.clone();
        for (i, &lvl) in level_of.iter().enumerate() {
            items[next[lvl]] = i;
            next[lvl] += 1;
        }
        LevelSets { level_ptr, items, level_of }
    }

    /// Rebuild a decomposition from its stored arrays (the persistence
    /// path: a plan store saves `level_ptr` and `items`, then reconstructs
    /// here instead of re-running [`LevelSets::analyse`]).
    ///
    /// Validates that `level_ptr` is monotone and spans `items` exactly and
    /// that `items` enumerates `0..n` once each; `level_of` is recomputed.
    /// The *topological* property (every dependency in an earlier level) is
    /// the writer's responsibility — it is exactly what `analyse` produced
    /// and file integrity is the storage layer's concern.
    pub fn from_parts(level_ptr: Vec<usize>, items: Vec<usize>) -> Result<Self, MatrixError> {
        if level_ptr.is_empty() || level_ptr[0] != 0 {
            return Err(MatrixError::MalformedPointer("level_ptr must start at 0"));
        }
        if level_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(MatrixError::MalformedPointer("level_ptr must be non-decreasing"));
        }
        if *level_ptr.last().unwrap() != items.len() {
            return Err(MatrixError::MalformedPointer("level_ptr must end at items.len()"));
        }
        let n = items.len();
        let mut level_of = vec![usize::MAX; n];
        for lvl in 0..level_ptr.len() - 1 {
            for &i in &items[level_ptr[lvl]..level_ptr[lvl + 1]] {
                if i >= n {
                    return Err(MatrixError::IndexOutOfBounds {
                        what: "level items",
                        index: i,
                        bound: n,
                    });
                }
                if level_of[i] != usize::MAX {
                    return Err(MatrixError::InvalidPermutation("level items repeat a component"));
                }
                level_of[i] = lvl;
            }
        }
        // Every slot filled ⇔ items is a bijection of 0..n.
        debug_assert!(level_of.iter().all(|&l| l != usize::MAX));
        Ok(LevelSets { level_ptr, items, level_of })
    }

    /// Number of levels.
    pub fn nlevels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Number of components.
    pub fn n(&self) -> usize {
        self.level_of.len()
    }

    /// Pointer array over [`Self::level_items`].
    pub fn level_ptr(&self) -> &[usize] {
        &self.level_ptr
    }

    /// All components grouped by level.
    pub fn items(&self) -> &[usize] {
        &self.items
    }

    /// Level of component `i`.
    pub fn level_of(&self, i: usize) -> usize {
        self.level_of[i]
    }

    /// Components of level `l`.
    pub fn level_items(&self, l: usize) -> &[usize] {
        &self.items[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Number of components in level `l` — the "parallelism" of that level.
    pub fn level_size(&self, l: usize) -> usize {
        self.level_ptr[l + 1] - self.level_ptr[l]
    }

    /// (min, average, max) level sizes — the parallelism columns of the
    /// paper's Table 4.
    pub fn parallelism(&self) -> (usize, f64, usize) {
        if self.nlevels() == 0 {
            return (0, 0.0, 0);
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        for l in 0..self.nlevels() {
            let s = self.level_size(l);
            min = min.min(s);
            max = max.max(s);
        }
        (min, self.n() as f64 / self.nlevels() as f64, max)
    }

    /// The level-order permutation (`perm[new] = old`): components sorted by
    /// level, original order preserved within a level. Because level order is
    /// a topological order of the dependency DAG, symmetric permutation by it
    /// keeps the matrix lower triangular.
    pub fn permutation(&self) -> Permutation {
        Permutation::from_forward(self.items.clone())
            .expect("level items enumerate each component exactly once")
    }

    /// Level-order permutation with an explicit within-level order. Any
    /// within-level order preserves triangularity (components of one level
    /// are mutually independent); sorting heavy rows last within their level
    /// pushes their off-level nonzeros toward the square blocks, the effect
    /// the paper's Section 3.3 observes of level sorting.
    pub fn permutation_ordered<S: Scalar>(
        &self,
        l: &crate::csr::Csr<S>,
        order: WithinLevelOrder,
    ) -> Permutation {
        let mut items = self.items.clone();
        if order != WithinLevelOrder::ByIndex {
            for lv in 0..self.nlevels() {
                let slice = &mut items[self.level_ptr[lv]..self.level_ptr[lv + 1]];
                match order {
                    WithinLevelOrder::ByIndex => {}
                    WithinLevelOrder::ShortRowsFirst => {
                        slice.sort_by_key(|&i| (l.row_nnz(i), i));
                    }
                    WithinLevelOrder::LongRowsFirst => {
                        slice.sort_by_key(|&i| (usize::MAX - l.row_nnz(i), i));
                    }
                }
            }
        }
        Permutation::from_forward(items)
            .expect("within-level reordering keeps the enumeration a bijection")
    }
}

/// How components are ordered inside one level set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WithinLevelOrder {
    /// Original index order (stable; the default).
    #[default]
    ByIndex,
    /// Shortest rows first — heavy rows sink to the end of their level.
    ShortRowsFirst,
    /// Longest rows first.
    LongRowsFirst,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permute::permute_symmetric;

    /// The 8×8 example of the paper's Figure 1: 15 nonzeros, 4 level sets
    /// {0,1,6}, {2,3,4}, {5}, {7}.
    pub fn figure1_matrix() -> Csr<f64> {
        let mut coo = crate::coo::Coo::<f64>::new(8, 8);
        let entries = [
            (0, 0),
            (1, 1),
            (2, 0),
            (2, 2),
            (3, 1),
            (3, 3),
            (4, 1),
            (4, 4),
            (5, 2),
            (5, 3),
            (5, 5),
            (6, 6),
            (7, 4),
            (7, 5),
            (7, 7),
        ];
        for &(i, j) in &entries {
            coo.push(i, j, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn figure1_has_four_levels() {
        let l = figure1_matrix();
        assert_eq!(l.nnz(), 15);
        let ls = LevelSets::analyse(&l).unwrap();
        assert_eq!(ls.nlevels(), 4);
        assert_eq!(ls.level_items(0), &[0, 1, 6]);
        assert_eq!(ls.level_items(1), &[2, 3, 4]);
        assert_eq!(ls.level_items(2), &[5]);
        assert_eq!(ls.level_items(3), &[7]);
    }

    #[test]
    fn figure1_parallelism() {
        let ls = LevelSets::analyse(&figure1_matrix()).unwrap();
        let (min, avg, max) = ls.parallelism();
        assert_eq!(min, 1);
        assert_eq!(max, 3);
        assert!((avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_one_level() {
        let d = Csr::<f64>::identity(10);
        let ls = LevelSets::analyse(&d).unwrap();
        assert_eq!(ls.nlevels(), 1);
        assert_eq!(ls.level_size(0), 10);
    }

    #[test]
    fn chain_matrix_is_fully_serial() {
        // Bidiagonal: level i for row i.
        let mut coo = crate::coo::Coo::<f64>::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 2.0).unwrap();
            if i > 0 {
                coo.push(i, i - 1, 1.0).unwrap();
            }
        }
        let ls = LevelSets::analyse(&coo.to_csr()).unwrap();
        assert_eq!(ls.nlevels(), 5);
        let (min, avg, max) = ls.parallelism();
        assert_eq!((min, max), (1, 1));
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn levels_respect_dependencies() {
        let l = figure1_matrix();
        let ls = LevelSets::analyse(&l).unwrap();
        for (i, j, _) in l.iter() {
            if j < i {
                assert!(ls.level_of(j) < ls.level_of(i), "dep ({i},{j}) violates level order");
            }
        }
    }

    #[test]
    fn permutation_keeps_lower_triangular() {
        let l = figure1_matrix();
        let ls = LevelSets::analyse(&l).unwrap();
        let p = ls.permutation();
        let b = permute_symmetric(&l, &p).unwrap();
        assert!(b.is_solvable_lower());
    }

    #[test]
    fn ordered_permutations_stay_valid_and_topological() {
        use crate::permute::permute_symmetric;
        let l = crate::generate::random_lower::<f64>(300, 4.0, 7);
        let ls = LevelSets::analyse(&l).unwrap();
        for order in [
            WithinLevelOrder::ByIndex,
            WithinLevelOrder::ShortRowsFirst,
            WithinLevelOrder::LongRowsFirst,
        ] {
            let p = ls.permutation_ordered(&l, order);
            let b = permute_symmetric(&l, &p).unwrap();
            assert!(b.is_solvable_lower(), "{order:?}");
        }
    }

    #[test]
    fn short_rows_first_sorts_within_levels() {
        let l = crate::generate::random_lower::<f64>(200, 5.0, 8);
        let ls = LevelSets::analyse(&l).unwrap();
        let p = ls.permutation_ordered(&l, WithinLevelOrder::ShortRowsFirst);
        // Within each level the mapped-from rows have non-decreasing length.
        let mut pos = 0usize;
        for lv in 0..ls.nlevels() {
            let size = ls.level_size(lv);
            let lens: Vec<usize> = (pos..pos + size).map(|new| l.row_nnz(p.old_of(new))).collect();
            assert!(lens.windows(2).all(|w| w[0] <= w[1]), "level {lv} unsorted");
            pos += size;
        }
    }

    #[test]
    fn analyse_rejects_non_triangular() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1., 1., 1.]).unwrap();
        assert!(LevelSets::analyse(&a).is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::<f64>::zero(0, 0);
        let ls = LevelSets::analyse(&a).unwrap();
        assert_eq!(ls.nlevels(), 0);
        assert_eq!(ls.n(), 0);
    }

    #[test]
    fn from_parts_roundtrips_analysis() {
        let l = crate::generate::random_lower::<f64>(250, 4.0, 9);
        let ls = LevelSets::analyse(&l).unwrap();
        let rebuilt = LevelSets::from_parts(ls.level_ptr().to_vec(), ls.items().to_vec()).unwrap();
        assert_eq!(rebuilt, ls);
    }

    #[test]
    fn from_parts_rejects_malformed() {
        // Pointer does not start at zero.
        assert!(LevelSets::from_parts(vec![1, 2], vec![0, 1]).is_err());
        // Pointer decreases.
        assert!(LevelSets::from_parts(vec![0, 2, 1], vec![0, 1]).is_err());
        // Pointer does not span items.
        assert!(LevelSets::from_parts(vec![0, 1], vec![0, 1]).is_err());
        // Item out of range.
        assert!(LevelSets::from_parts(vec![0, 2], vec![0, 5]).is_err());
        // Repeated item.
        assert!(LevelSets::from_parts(vec![0, 2], vec![1, 1]).is_err());
        // Empty decomposition is fine.
        assert_eq!(LevelSets::from_parts(vec![0], vec![]).unwrap().nlevels(), 0);
    }

    #[test]
    fn level_of_matches_items() {
        let ls = LevelSets::analyse(&figure1_matrix()).unwrap();
        for l in 0..ls.nlevels() {
            for &i in ls.level_items(l) {
                assert_eq!(ls.level_of(i), l);
            }
        }
    }
}
