//! Selector explainability: why Algorithm 7 chose each block's kernel.
//!
//! Every [`crate::blocked::BlockedTri`] plan carries a [`SelectionReport`]:
//! per block, the Algorithm 7 input statistics (`nnz/row`, `nlevels`,
//! `emptyratio`), the kernel chosen, the candidates rejected, the threshold
//! whose comparison decided it, and the level-set shape of triangular
//! blocks (level count, rows-per-level histogram). Plan-wide it records the
//! recursion depth and the wall-clock cost of the recursive level-set
//! reorder. The report is assembled at preprocessing time — the solve hot
//! path never touches it.
//!
//! Surfaced through [`crate::solver::RecBlockSolver::explain`] and the
//! `planctl explain` subcommand; the per-block statistics are exactly the
//! axes of the paper's Figure 5 selector heatmap, so a report can be read
//! against it directly.

use crate::adaptive::{Selector, SpmvDecision, TriDecision, TriKernel};
use recblock_gpu_sim::cost::SpmvKind;
use recblock_gpu_sim::{SpmvProfile, TriProfile};
use recblock_kernels::exec::{ScheduleMode, TuneParams};
use recblock_kernels::TaskGraphStats;
use std::fmt;
use std::ops::Range;
use std::time::Duration;

/// One-line rendering of the fields where `tune` differs from the process
/// defaults (empty string when it doesn't). Reconciliation messages use it
/// to name a *persisted* tuning instead of misattributing the plan to
/// default thresholds; `planctl explain` prints it as the plan's tune line.
pub fn tune_drift(tune: &TuneParams) -> String {
    let base = TuneParams::default();
    let mut parts = Vec::new();
    if tune.schedule_mode != base.schedule_mode {
        let mode = match tune.schedule_mode {
            ScheduleMode::Auto => "auto",
            ScheduleMode::LevelSync => "level-sync",
            ScheduleMode::PointToPoint => "p2p",
        };
        parts.push(format!("schedule_mode={mode}"));
    }
    if tune.par_rows != base.par_rows {
        parts.push(format!("par_rows={}", tune.par_rows));
    }
    if tune.fuse_nnz != base.fuse_nnz {
        parts.push(format!("fuse_nnz={}", tune.fuse_nnz));
    }
    if tune.chunk_nnz != base.chunk_nnz {
        parts.push(format!("chunk_nnz={}", tune.chunk_nnz));
    }
    if tune.lanes != base.lanes {
        parts.push(format!("lanes={}", tune.lanes));
    }
    if tune.p2p_min_parallel != base.p2p_min_parallel {
        parts.push(format!("p2p_min_parallel={}", tune.p2p_min_parallel));
    }
    if tune.p2p_chunk_nnz != base.p2p_chunk_nnz {
        parts.push(format!("p2p_chunk_nnz={}", tune.p2p_chunk_nnz));
    }
    parts.join(" ")
}

/// Rows-per-level shape of a triangular block after reordering — the
/// structure that decides how well a level-scheduled kernel can do.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelShape {
    /// Number of levels.
    pub nlevels: usize,
    /// Rows of the widest level.
    pub max_level_rows: usize,
    /// Mean rows per level.
    pub mean_level_rows: f64,
    /// Log₂ histogram: `(upper bound on rows-per-level, levels in bucket)`,
    /// ascending; bucket `(u, c)` counts levels with `u/2 < rows ≤ u`.
    pub hist: Vec<(usize, usize)>,
}

impl LevelShape {
    /// Summarise a rows-per-level profile (`level_rows[l]` = rows of level
    /// `l`, as in [`TriProfile::level_rows`]).
    pub fn from_level_rows(level_rows: &[usize]) -> Self {
        let nlevels = level_rows.len();
        // Saturate rather than trust the input: a plan decoded from a
        // corrupt file can claim absurd per-level row counts, and a summary
        // must never panic where the decoder chose to be lenient.
        let total: usize = level_rows.iter().fold(0usize, |a, &r| a.saturating_add(r));
        let max_level_rows = level_rows.iter().copied().max().unwrap_or(0);
        let mut hist: Vec<(usize, usize)> = Vec::new();
        for &r in level_rows {
            let ub = r.max(1).checked_next_power_of_two().unwrap_or(usize::MAX);
            match hist.binary_search_by_key(&ub, |&(u, _)| u) {
                Ok(i) => hist[i].1 += 1,
                Err(i) => hist.insert(i, (ub, 1)),
            }
        }
        LevelShape {
            nlevels,
            max_level_rows,
            mean_level_rows: if nlevels == 0 { 0.0 } else { total as f64 / nlevels as f64 },
            hist,
        }
    }
}

/// Shape-specific half of a [`BlockDecision`].
#[derive(Debug, Clone, PartialEq)]
pub enum BlockDecisionKind {
    /// Triangular diagonal block (SpTRSV kernel selection).
    Tri {
        /// The explained Algorithm 7 decision.
        decision: TriDecision,
        /// Observed `nnz/row` (selection input).
        nnz_per_row: f64,
        /// Observed level count (selection input).
        nlevels: usize,
        /// Rows-per-level shape after reordering.
        shape: LevelShape,
        /// `(runs, parallel launches)` of the preplanned engine schedule,
        /// for the schedule-based kernels (level-set, cuSPARSE-like).
        schedule: Option<(usize, usize)>,
        /// Synchronisation scheme of the engine schedule (`"p2p"` or
        /// `"level-sync"`); `None` for kernels that run no engine schedule
        /// (diagonal, sync-free).
        schedule_mode: Option<&'static str>,
        /// Shape of the compiled point-to-point task graph, when the block
        /// runs barrier-free.
        tasks: Option<TaskGraphStats>,
    },
    /// Square update block (SpMV kernel selection).
    Square {
        /// The explained Algorithm 7 decision (including any build-time
        /// overrides, stated in its rule text).
        decision: SpmvDecision,
        /// Observed `nnz/row` (selection input).
        nnz_per_row: f64,
        /// Observed empty-row ratio (selection input).
        empty_ratio: f64,
        /// Parallel chunks of the preplanned SpMV schedule.
        nchunks: usize,
    },
}

/// One block's explained kernel selection, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDecision {
    /// Position in the execution-order block list.
    pub index: usize,
    /// Row range in the reordered matrix.
    pub rows: Range<usize>,
    /// Column range in the reordered matrix.
    pub cols: Range<usize>,
    /// Stored nonzeros of the block.
    pub nnz: usize,
    /// The decision itself.
    pub kind: BlockDecisionKind,
}

impl BlockDecision {
    /// The chosen kernel's display name.
    pub fn kernel_name(&self) -> &'static str {
        match &self.kind {
            BlockDecisionKind::Tri { decision, .. } => decision.chosen.name(),
            BlockDecisionKind::Square { decision, .. } => decision.chosen.name(),
        }
    }

    /// Name of the threshold whose comparison decided the kernel.
    pub fn threshold(&self) -> &'static str {
        match &self.kind {
            BlockDecisionKind::Tri { decision, .. } => decision.threshold,
            BlockDecisionKind::Square { decision, .. } => decision.threshold,
        }
    }
}

/// The plan-wide explainability report attached to every
/// [`crate::blocked::BlockedTri`].
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionReport {
    /// Rows of the system.
    pub n: usize,
    /// Nonzeros of the system.
    pub nnz: usize,
    /// Recursion depth of the block plan.
    pub depth: usize,
    /// Wall-clock cost of the recursive level-set reorder; `None` when
    /// reordering was disabled or the plan was loaded from a store (the
    /// original timing was not persisted).
    pub reorder_time: Option<Duration>,
    /// `true` when the report was re-derived from a persisted plan rather
    /// than recorded at build time — the chosen kernels are authoritative
    /// but the rule text was reconstructed with default thresholds.
    pub derived: bool,
    /// Per-block decisions in execution order.
    pub blocks: Vec<BlockDecision>,
}

impl SelectionReport {
    /// Decisions for the triangular blocks only.
    pub fn tri_blocks(&self) -> impl Iterator<Item = &BlockDecision> {
        self.blocks.iter().filter(|b| matches!(b.kind, BlockDecisionKind::Tri { .. }))
    }

    /// Decisions for the square blocks only.
    pub fn square_blocks(&self) -> impl Iterator<Item = &BlockDecision> {
        self.blocks.iter().filter(|b| matches!(b.kind, BlockDecisionKind::Square { .. }))
    }

    /// Full multi-line rendering: the summary plus, per block, the decision
    /// rule, the rejected candidates, and (for triangular blocks) the
    /// rows-per-level histogram. `planctl explain --kernels` prints this.
    pub fn detail(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{self}");
        for b in &self.blocks {
            let _ = writeln!(out, "\nblock {:>3}  rows {:?}  cols {:?}", b.index, b.rows, b.cols);
            match &b.kind {
                BlockDecisionKind::Tri {
                    decision,
                    nnz_per_row,
                    nlevels,
                    shape,
                    schedule,
                    schedule_mode,
                    tasks,
                } => {
                    let _ = writeln!(
                        out,
                        "  tri    -> {}  (deciding threshold: {})",
                        decision.chosen.name(),
                        decision.threshold
                    );
                    let _ = writeln!(out, "  rule     {}", decision.rule);
                    let _ = writeln!(
                        out,
                        "  rejected {}",
                        decision.rejected.iter().map(|k| k.name()).collect::<Vec<_>>().join(", ")
                    );
                    let _ = writeln!(
                        out,
                        "  stats    nnz/row={nnz_per_row:.2} nlevels={nlevels} \
                         max_level_rows={} mean_level_rows={:.1}",
                        shape.max_level_rows, shape.mean_level_rows
                    );
                    if let Some((runs, par)) = schedule {
                        let _ = writeln!(
                            out,
                            "  schedule {runs} runs, {par} parallel launches \
                             ({} levels coarsened away){}",
                            nlevels.saturating_sub(*runs),
                            match schedule_mode {
                                Some(m) => format!(", mode {m}"),
                                None => String::new(),
                            }
                        );
                    }
                    if let Some(ts) = tasks {
                        let _ = writeln!(
                            out,
                            "  taskgraph {} tasks on {} threads, {} cross-thread edges, \
                             critical path {}",
                            ts.ntasks, ts.nthreads, ts.cross_edges, ts.critical_path
                        );
                    }
                    let hist = shape
                        .hist
                        .iter()
                        .map(|(u, c)| format!("<={u}:{c}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let _ = writeln!(out, "  rows/level histogram  {hist}");
                }
                BlockDecisionKind::Square { decision, nnz_per_row, empty_ratio, nchunks } => {
                    let _ = writeln!(
                        out,
                        "  square -> {}  (deciding threshold: {})",
                        decision.chosen.name(),
                        decision.threshold
                    );
                    let _ = writeln!(out, "  rule     {}", decision.rule);
                    let _ = writeln!(
                        out,
                        "  rejected {}",
                        decision.rejected.iter().map(|k| k.name()).collect::<Vec<_>>().join(", ")
                    );
                    let _ = writeln!(
                        out,
                        "  stats    nnz/row={nnz_per_row:.2} emptyratio={empty_ratio:.2} \
                         spmv chunks={nchunks}"
                    );
                }
            }
        }
        out
    }
}

impl fmt::Display for SelectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan: n={} nnz={} depth={} blocks={}{}",
            self.n,
            self.nnz,
            self.depth,
            self.blocks.len(),
            if self.derived { "  (re-derived from persisted plan)" } else { "" }
        )?;
        match self.reorder_time {
            Some(t) => writeln!(f, "reorder: {t:?}")?,
            None => writeln!(f, "reorder: skipped or not recorded")?,
        }
        for b in &self.blocks {
            match &b.kind {
                BlockDecisionKind::Tri { decision, nnz_per_row, nlevels, .. } => writeln!(
                    f,
                    "block {:>3}  tri    {:>7} rows -> {:<19} deciding: {:<21} \
                     [nnz/row={:.2} nlevels={}]",
                    b.index,
                    b.rows.len(),
                    decision.chosen.name(),
                    decision.threshold,
                    nnz_per_row,
                    nlevels
                )?,
                BlockDecisionKind::Square { decision, nnz_per_row, empty_ratio, .. } => writeln!(
                    f,
                    "block {:>3}  square {:>7} rows -> {:<19} deciding: {:<21} \
                     [nnz/row={:.2} emptyratio={:.2}]",
                    b.index,
                    b.rows.len(),
                    decision.chosen.name(),
                    decision.threshold,
                    nnz_per_row,
                    empty_ratio
                )?,
            }
        }
        Ok(())
    }
}

/// Explain a triangular block's selection, reconciled against the kernel
/// the block actually carries (they differ only for persisted plans whose
/// original selector is unknown).
pub(crate) fn tri_decision(
    selector: &Selector,
    profile: &TriProfile,
    actual: TriKernel,
    tune: &TuneParams,
) -> TriDecision {
    let mut d = selector.explain_tri_shaped(profile.nnz_per_row(), profile.nlevels(), profile.n);
    if d.chosen != actual {
        let drift = tune_drift(tune);
        if drift.is_empty() {
            d.rule.push_str(&format!(
                "; persisted plan stores {}: original selector not recorded, rule re-derived \
                 from default thresholds",
                actual.name()
            ));
        } else {
            d.rule.push_str(&format!(
                "; persisted plan stores {} under tuned params [{drift}]: original selector \
                 not recorded, rule re-derived from the persisted tuning",
                actual.name()
            ));
        }
        d.rejected.retain(|k| *k != actual);
        d.rejected.push(d.chosen);
        d.chosen = actual;
        d.threshold = "persisted";
    }
    d
}

/// Explain a square block's selection, replaying the build-time overrides
/// ([`crate::sqsolver::SqSolver::build_tuned`]'s load-imbalance guard and
/// DCSR downgrade) so the rule text states why the stored kernel differs
/// from the raw Algorithm 7 pick. `allow_dcsr = None` means unknown (a
/// persisted plan).
pub(crate) fn spmv_decision(
    selector: &Selector,
    profile: &SpmvProfile,
    actual: SpmvKind,
    allow_dcsr: Option<bool>,
    tune: &TuneParams,
) -> SpmvDecision {
    let mut d = selector.explain_spmv(profile.nnz_per_row(), profile.empty_ratio());
    let avg = profile.nnz_per_row().max(1.0);
    if profile.max_row as f64 > 32.0 * avg {
        let upgraded = match d.chosen {
            SpmvKind::ScalarCsr => SpmvKind::VectorCsr,
            SpmvKind::ScalarDcsr => SpmvKind::VectorDcsr,
            k => k,
        };
        if upgraded != d.chosen {
            d.rule.push_str(&format!(
                "; load-imbalance guard: max_row={} > 32 x nnz/row, scalar upgraded to {}",
                profile.max_row,
                upgraded.name()
            ));
            d.rejected.retain(|k| *k != upgraded);
            d.rejected.push(d.chosen);
            d.chosen = upgraded;
        }
    }
    if allow_dcsr == Some(false) {
        let down = match d.chosen {
            SpmvKind::ScalarDcsr => SpmvKind::ScalarCsr,
            SpmvKind::VectorDcsr => SpmvKind::VectorCsr,
            k => k,
        };
        if down != d.chosen {
            d.rule.push_str("; DCSR disabled (ablation): downgraded to CSR storage");
            d.rejected.retain(|k| *k != down);
            d.rejected.push(d.chosen);
            d.chosen = down;
        }
    }
    if d.chosen != actual {
        let drift = tune_drift(tune);
        if drift.is_empty() {
            d.rule.push_str(&format!(
                "; persisted plan stores {}: original selector/options not recorded, rule \
                 re-derived from defaults",
                actual.name()
            ));
        } else {
            d.rule.push_str(&format!(
                "; persisted plan stores {} under tuned params [{drift}]: original \
                 selector/options not recorded, rule re-derived from the persisted tuning",
                actual.name()
            ));
        }
        d.rejected.retain(|k| *k != actual);
        d.rejected.push(d.chosen);
        d.chosen = actual;
        d.threshold = "persisted";
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_shape_histogram_buckets_by_power_of_two() {
        let shape = LevelShape::from_level_rows(&[1, 1, 2, 3, 4, 9, 1000]);
        assert_eq!(shape.nlevels, 7);
        assert_eq!(shape.max_level_rows, 1000);
        assert!((shape.mean_level_rows - 1020.0 / 7.0).abs() < 1e-9);
        // 1→≤1 (x2), 2→≤2, 3,4→≤4, 9→≤16, 1000→≤1024.
        assert_eq!(shape.hist, vec![(1, 2), (2, 1), (4, 2), (16, 1), (1024, 1)]);
    }

    #[test]
    fn level_shape_handles_empty() {
        let shape = LevelShape::from_level_rows(&[]);
        assert_eq!(shape.nlevels, 0);
        assert_eq!(shape.mean_level_rows, 0.0);
        assert!(shape.hist.is_empty());
    }

    #[test]
    fn tri_decision_reconciles_persisted_mismatch() {
        let profile = TriProfile::from_levels(
            vec![10, 10], // level_rows
            vec![10, 20], // level_nnz
            vec![1, 2],   // level_max_row
            vec![1, 2],   // level_max_col
        );
        // Default thresholds pick level-set here; pretend the stored plan
        // carries sync-free.
        let d = tri_decision(
            &Selector::default(),
            &profile,
            TriKernel::SyncFree,
            &TuneParams::default(),
        );
        assert_eq!(d.chosen, TriKernel::SyncFree);
        assert_eq!(d.threshold, "persisted");
        assert!(d.rule.contains("persisted plan"));
        assert!(d.rule.contains("default thresholds"), "{}", d.rule);
        assert!(!d.rejected.contains(&TriKernel::SyncFree));
    }

    #[test]
    fn tri_decision_names_persisted_tune_on_mismatch() {
        let profile = TriProfile::from_levels(
            vec![10, 10], // level_rows
            vec![10, 20], // level_nnz
            vec![1, 2],   // level_max_row
            vec![1, 2],   // level_max_col
        );
        let tuned = TuneParams {
            schedule_mode: ScheduleMode::PointToPoint,
            p2p_chunk_nnz: 384,
            ..TuneParams::default()
        };
        let d = tri_decision(&Selector::default(), &profile, TriKernel::SyncFree, &tuned);
        assert_eq!(d.chosen, TriKernel::SyncFree);
        assert_eq!(d.threshold, "persisted");
        // The drift message must name the plan's persisted tuning, not
        // claim the process defaults were in force.
        assert!(d.rule.contains("schedule_mode=p2p"), "{}", d.rule);
        assert!(d.rule.contains("p2p_chunk_nnz=384"), "{}", d.rule);
        assert!(!d.rule.contains("default thresholds"), "{}", d.rule);
    }

    #[test]
    fn tune_drift_renders_only_non_default_fields() {
        assert_eq!(tune_drift(&TuneParams::default()), "");
        let tuned = TuneParams {
            schedule_mode: ScheduleMode::LevelSync,
            chunk_nnz: 8192,
            ..TuneParams::default()
        };
        assert_eq!(tune_drift(&tuned), "schedule_mode=level-sync chunk_nnz=8192");
    }

    #[test]
    fn spmv_decision_states_imbalance_guard() {
        // Short rows on average but one huge row: the guard upgrades
        // scalar→vector and the rule says so.
        let profile = SpmvProfile { nrows: 1000, ncols: 1000, nnz: 2000, lanes: 900, max_row: 500 };
        let d = spmv_decision(
            &Selector::default(),
            &profile,
            SpmvKind::VectorCsr,
            Some(true),
            &TuneParams::default(),
        );
        assert_eq!(d.chosen, SpmvKind::VectorCsr);
        assert!(d.rule.contains("load-imbalance guard"), "{}", d.rule);
    }

    #[test]
    fn spmv_decision_states_dcsr_downgrade() {
        // Hyper-sparse: raw pick is scalar-DCSR; with DCSR disabled the
        // stored kernel is scalar-CSR and the rule explains why.
        let profile = SpmvProfile { nrows: 1000, ncols: 1000, nnz: 400, lanes: 150, max_row: 4 };
        let d = spmv_decision(
            &Selector::default(),
            &profile,
            SpmvKind::ScalarCsr,
            Some(false),
            &TuneParams::default(),
        );
        assert_eq!(d.chosen, SpmvKind::ScalarCsr);
        assert!(d.rule.contains("DCSR disabled"), "{}", d.rule);
        assert!(d.rejected.contains(&SpmvKind::ScalarDcsr));
    }
}
