//! Fuzz-style property tests over the RBNET frame codec (satellite of the
//! network tier): encoded frames round-trip exactly, and *any* mangling —
//! truncation, bit flips, random garbage — produces a typed `FrameError`
//! or a clean "need more bytes", never a panic and never an accepted
//! frame that disagrees with what was sent.

use proptest::prelude::*;
use recblock_matrix::Fingerprint;
use recblock_net::frame::{self, FrameKind, HEADER_LEN};
use recblock_net::{ErrCode, StatReply, TenantStat};
use recblock_store::PlanKey;

const MAX_PAYLOAD: u32 = 1 << 20;

fn arb_key() -> impl Strategy<Value = PlanKey> {
    (1usize..1_000_000, 0usize..100_000_000, u64::MIN..u64::MAX, u64::MIN..u64::MAX).prop_map(
        |(n, nnz, hash, values)| PlanKey {
            structure: Fingerprint { nrows: n, ncols: n, nnz, hash },
            values,
        },
    )
}

fn arb_tenant() -> impl Strategy<Value = String> {
    (1usize..65, 0u8..26).prop_map(|(len, off)| {
        let c = (b'a' + off) as char;
        std::iter::repeat_n(c, len).collect()
    })
}

fn arb_cols() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..4, 1usize..40).prop_map(|(k, n)| {
        (0..k).map(|j| (0..n).map(|i| ((i * 7 + j * 13) as f64).sin()).collect()).collect()
    })
}

/// Feed `decode_header` + the payload parsers exactly the way the server
/// does; must never panic, whatever the bytes.
fn decode_anything(bytes: &[u8]) {
    match frame::decode_header(bytes, MAX_PAYLOAD) {
        Err(_) => {}   // typed rejection
        Ok(None) => {} // needs more bytes — fine
        Ok(Some(h)) => {
            let end = HEADER_LEN + h.payload_len as usize;
            if bytes.len() < end {
                return; // partial payload: the server would keep reading
            }
            let payload = &bytes[HEADER_LEN..end];
            // Every parser must be total over arbitrary payloads.
            let _ = frame::parse_solve(payload);
            let _ = frame::parse_solve_ok(payload);
            let _ = frame::parse_err(payload);
            let _ = frame::parse_stat_reply(payload);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn solve_frames_round_trip(
        tag in u64::MIN..u64::MAX,
        tenant in arb_tenant(),
        key in arb_key(),
        deadline in 0u32..1_000_000,
        cols in arb_cols(),
    ) {
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut buf = Vec::new();
        frame::encode_solve(&mut buf, tag, &tenant, &key, deadline, &refs);

        let h = frame::decode_header(&buf, MAX_PAYLOAD).unwrap().expect("whole header");
        prop_assert_eq!(h.kind, FrameKind::Solve);
        prop_assert_eq!(h.tag, tag);
        prop_assert_eq!(HEADER_LEN + h.payload_len as usize, buf.len());

        let req = frame::parse_solve(&buf[HEADER_LEN..]).unwrap();
        prop_assert_eq!(req.tenant, tenant.as_str());
        prop_assert_eq!(req.key, key);
        prop_assert_eq!(req.deadline_ms, deadline);
        prop_assert_eq!(req.k as usize, cols.len());
        prop_assert_eq!(req.n as usize, cols[0].len());
        for (j, col) in cols.iter().enumerate() {
            let mut out = Vec::new();
            frame::decode_scalars::<f64>(req.col_bytes(j), req.width, &mut out).unwrap();
            prop_assert_eq!(&out, col);
        }
    }

    #[test]
    fn solve_ok_and_err_round_trip(
        tag in u64::MIN..u64::MAX,
        cols in arb_cols(),
        code_raw in 1u16..12,
        msg in arb_tenant(),
    ) {
        let mut buf = Vec::new();
        frame::encode_solve_ok(&mut buf, tag, &cols);
        let h = frame::decode_header(&buf, MAX_PAYLOAD).unwrap().unwrap();
        prop_assert_eq!(h.kind, FrameKind::SolveOk);
        let ok = frame::parse_solve_ok(&buf[HEADER_LEN..]).unwrap();
        prop_assert_eq!(ok.k as usize, cols.len());
        for (j, col) in cols.iter().enumerate() {
            let mut out = Vec::new();
            frame::decode_scalars::<f64>(ok.col_bytes(j), ok.width, &mut out).unwrap();
            prop_assert_eq!(&out, col);
        }

        let code = ErrCode::from_u16(code_raw).expect("1..=11 are assigned");
        let mut ebuf = Vec::new();
        frame::encode_err(&mut ebuf, tag, code, &msg);
        let eh = frame::decode_header(&ebuf, MAX_PAYLOAD).unwrap().unwrap();
        prop_assert_eq!(eh.kind, FrameKind::Err);
        let (c, m) = frame::parse_err(&ebuf[HEADER_LEN..]).unwrap();
        prop_assert_eq!(c, code);
        prop_assert_eq!(m, msg.as_str());
    }

    #[test]
    fn stat_replies_round_trip(
        tag in u64::MIN..u64::MAX,
        draining in 0u8..2,
        health in 0u8..3,
        plans in 0u32..10_000,
        inflight in 0u32..10_000,
        tenants in proptest::collection::vec(
            (arb_tenant(), 0u64..1_000_000, 0u64..1_000_000), 0..5),
    ) {
        let stat = StatReply {
            draining: draining == 1,
            health,
            plans_warm: plans,
            inflight,
            tenants: tenants
                .into_iter()
                .enumerate()
                .map(|(i, (tenant, a, b))| TenantStat {
                    tenant: format!("{tenant}{i}"), // de-duplicate names
                    queue_depth: a.min(b),
                    admitted: a,
                    completed: b,
                    admission_rejected: a / 2,
                    shed: b / 3,
                })
                .collect(),
        };
        let mut buf = Vec::new();
        frame::encode_stat_reply(&mut buf, tag, &stat);
        let h = frame::decode_header(&buf, MAX_PAYLOAD).unwrap().unwrap();
        prop_assert_eq!(h.kind, FrameKind::StatOk);
        prop_assert_eq!(h.tag, tag);
        let back = frame::parse_stat_reply(&buf[HEADER_LEN..]).unwrap();
        prop_assert_eq!(back, stat);
    }

    // Truncating a valid frame anywhere yields `Ok(None)` (header short)
    // or a typed payload error — never a panic, never a bogus success.
    #[test]
    fn truncation_never_panics(
        tenant in arb_tenant(),
        key in arb_key(),
        cols in arb_cols(),
        cut_seed in 0usize..10_000,
    ) {
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut buf = Vec::new();
        frame::encode_solve(&mut buf, 7, &tenant, &key, 0, &refs);
        let cut = cut_seed % buf.len();
        decode_anything(&buf[..cut]);
        // Truncated *payload* handed to the solve parser directly must be
        // a typed error, not an accepted frame.
        if cut > HEADER_LEN {
            prop_assert!(frame::parse_solve(&buf[HEADER_LEN..cut]).is_err());
        }
    }

    // A single flipped bit anywhere in a valid frame must decode to a
    // typed error, an incomplete read, or a frame that differs from the
    // original only where the flip landed in the value bytes.
    #[test]
    fn bit_flips_never_panic(
        tenant in arb_tenant(),
        key in arb_key(),
        cols in arb_cols(),
        flip_seed in 0usize..100_000,
    ) {
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut buf = Vec::new();
        frame::encode_solve(&mut buf, 9, &tenant, &key, 0, &refs);
        let bit = flip_seed % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        decode_anything(&buf);
    }

    // Pure garbage bytes never panic any layer of the codec.
    #[test]
    fn random_bytes_never_panic(
        bytes in proptest::collection::vec(0u16..256, 0..256).prop_map(
            |v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
    ) {
        decode_anything(&bytes);
        // And garbage handed straight to the payload parsers.
        let _ = frame::parse_solve(&bytes);
        let _ = frame::parse_solve_ok(&bytes);
        let _ = frame::parse_err(&bytes);
        let _ = frame::parse_stat_reply(&bytes);
        let mut out = Vec::new();
        let _ = frame::decode_scalars::<f64>(&bytes, 8, &mut out);
        let mut out32: Vec<f32> = Vec::new();
        let _ = frame::decode_scalars::<f32>(&bytes, 4, &mut out32);
    }

    // Oversize announcements are rejected at the header, before any
    // payload allocation could happen.
    #[test]
    fn oversize_headers_rejected(extra in 1u32..1_000_000, tag in u64::MIN..u64::MAX) {
        let mut buf = Vec::new();
        frame::encode_header(&mut buf, FrameKind::Solve, tag, MAX_PAYLOAD + extra);
        prop_assert!(matches!(
            frame::decode_header(&buf, MAX_PAYLOAD),
            Err(frame::FrameError::Oversize { .. })
        ));
    }
}
