//! Print the paper's Table 3 (devices and algorithms).
fn main() {
    print!("{}", recblock_bench::experiments::table3::run());
}
