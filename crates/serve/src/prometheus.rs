//! Prometheus text-exposition rendering of a [`MetricsSnapshot`].
//!
//! Hand-written (no client-library dependency): the exposition format is a
//! few lines of text per metric — `# TYPE` declarations, `name{labels}
//! value` samples, and for histograms cumulative `_bucket{le="…"}` series
//! ending in `+Inf` plus `_sum`/`_count`. Durations are exposed in seconds
//! (the Prometheus convention); the log₂ nanosecond buckets convert to
//! fractional-second `le` bounds.

use crate::metrics::{MetricsSnapshot, StageSnapshot};
use std::fmt::Write as _;

/// Render `snapshot` in Prometheus text exposition format. Every metric
/// family is declared with exactly one `# TYPE` line; histogram buckets are
/// cumulative and end with an `+Inf` bucket equal to `_count`.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);

    counter_family(
        &mut out,
        "recblock_requests_total",
        "Requests by final outcome.",
        "outcome",
        &[
            ("submitted", snapshot.submitted),
            ("completed", snapshot.completed),
            ("rejected", snapshot.rejected),
            ("failed", snapshot.failed),
            ("cancelled", snapshot.cancelled),
        ],
    );
    counter_family(
        &mut out,
        "recblock_plan_cache_events_total",
        "Plan cache lookups and maintenance events.",
        "event",
        &[
            ("hit", snapshot.cache_hits),
            ("miss", snapshot.cache_misses),
            ("eviction", snapshot.cache_evictions),
            ("build", snapshot.plan_builds),
        ],
    );
    counter_family(
        &mut out,
        "recblock_store_events_total",
        "Plan store lookups, failures and writes.",
        "event",
        &[
            ("hit", snapshot.store_hits),
            ("miss", snapshot.store_misses),
            ("error", snapshot.store_errors),
            ("write", snapshot.store_writes),
        ],
    );
    scalar(
        &mut out,
        "recblock_preprocess_seconds_total",
        "counter",
        "Wall-clock spent preprocessing plans.",
        snapshot.preprocess_time.as_secs_f64(),
    );
    scalar(
        &mut out,
        "recblock_preprocess_saved_seconds_total",
        "counter",
        "Preprocessing wall-clock avoided by cache and store hits.",
        snapshot.preprocess_time_saved.as_secs_f64(),
    );
    scalar(
        &mut out,
        "recblock_store_bytes_read_total",
        "counter",
        "Bytes of plan files read (successful loads only).",
        snapshot.store_bytes_read as f64,
    );
    scalar(
        &mut out,
        "recblock_store_load_seconds_total",
        "counter",
        "Wall-clock spent loading plans from the store.",
        snapshot.store_load_time.as_secs_f64(),
    );
    counter_family(
        &mut out,
        "recblock_batches_total",
        "Solve batches executed.",
        "kind",
        &[("all", snapshot.batches), ("multi_column", snapshot.multi_column_batches)],
    );

    // Batch-size histogram: exact-size buckets are already cumulative-able.
    let _ = writeln!(out, "# HELP recblock_batch_size Right-hand sides per executed batch.");
    let _ = writeln!(out, "# TYPE recblock_batch_size histogram");
    let mut cum = 0u64;
    for &(size, count) in &snapshot.batch_sizes {
        cum += count;
        let _ = writeln!(out, "recblock_batch_size_bucket{{le=\"{size}\"}} {cum}");
    }
    let _ = writeln!(out, "recblock_batch_size_bucket{{le=\"+Inf\"}} {}", snapshot.batches);
    let _ = writeln!(out, "recblock_batch_size_sum {}", snapshot.batched_columns);
    let _ = writeln!(out, "recblock_batch_size_count {}", snapshot.batches);

    // Submit→answer latency histogram.
    let _ = writeln!(
        out,
        "# HELP recblock_request_latency_seconds Submit-to-answer latency of answered requests."
    );
    let _ = writeln!(out, "# TYPE recblock_request_latency_seconds histogram");
    let count: u64 = snapshot.latency_buckets.iter().map(|&(_, c)| c).sum();
    histogram_series(&mut out, "recblock_request_latency_seconds", "", &snapshot.latency_buckets);
    let _ = writeln!(
        out,
        "recblock_request_latency_seconds_sum {}",
        snapshot.latency_total.as_secs_f64()
    );
    let _ = writeln!(out, "recblock_request_latency_seconds_count {count}");

    // Per-stage histograms: one family, one label per stage.
    let _ = writeln!(out, "# HELP recblock_stage_seconds Wall-clock per request life-cycle stage.");
    let _ = writeln!(out, "# TYPE recblock_stage_seconds histogram");
    for s in &snapshot.stages {
        stage_series(&mut out, s);
    }

    // Per-tenant admission/QoS counter slices (network front end).
    if !snapshot.tenants.is_empty() {
        let _ = writeln!(
            out,
            "# HELP recblock_tenant_requests_total Per-tenant requests by admission outcome."
        );
        let _ = writeln!(out, "# TYPE recblock_tenant_requests_total counter");
        for t in &snapshot.tenants {
            for (event, v) in [
                ("admitted", t.admitted),
                ("admission_rejected", t.admission_rejected),
                ("shed_by_cost", t.shed_by_cost),
                ("shed_by_deadline", t.shed_by_deadline),
                ("completed", t.completed),
                ("failed", t.failed),
            ] {
                let _ = writeln!(
                    out,
                    "recblock_tenant_requests_total{{tenant=\"{}\",event=\"{event}\"}} {v}",
                    escape_label_value(&t.tenant)
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP recblock_tenant_admitted_cost_total Admitted request cost (nnz x rhs count)."
        );
        let _ = writeln!(out, "# TYPE recblock_tenant_admitted_cost_total counter");
        for t in &snapshot.tenants {
            let _ = writeln!(
                out,
                "recblock_tenant_admitted_cost_total{{tenant=\"{}\"}} {}",
                escape_label_value(&t.tenant),
                t.admitted_cost
            );
        }
        let _ = writeln!(
            out,
            "# HELP recblock_tenant_queue_depth Requests queued ahead of dispatch, per tenant."
        );
        let _ = writeln!(out, "# TYPE recblock_tenant_queue_depth gauge");
        for t in &snapshot.tenants {
            let _ = writeln!(
                out,
                "recblock_tenant_queue_depth{{tenant=\"{}\"}} {}",
                escape_label_value(&t.tenant),
                t.queue_depth
            );
        }
    }

    // Cluster tier: only rendered once a ring view has been applied, so
    // single-node deployments keep their exposition unchanged.
    if snapshot.cluster_members > 0 {
        counter_family(
            &mut out,
            "recblock_cluster_requests_total",
            "Cluster routing outcomes on this node.",
            "event",
            &[
                ("proxied", snapshot.cluster_proxied),
                ("redirect", snapshot.cluster_redirects),
                ("proxy_error", snapshot.cluster_proxy_errors),
            ],
        );
        counter_family(
            &mut out,
            "recblock_cluster_plan_migrations_total",
            "Warm .rbplan migrations between nodes.",
            "direction",
            &[
                ("pushed", snapshot.cluster_plans_pushed),
                ("received", snapshot.cluster_plans_received),
                ("served", snapshot.cluster_plans_served),
            ],
        );
        scalar(
            &mut out,
            "recblock_cluster_ring_epoch",
            "gauge",
            "Epoch of the most recently applied ring view.",
            snapshot.cluster_ring_epoch as f64,
        );
        scalar(
            &mut out,
            "recblock_cluster_members",
            "gauge",
            "Members in the most recently applied ring view.",
            snapshot.cluster_members as f64,
        );
    }

    // Canary-tuning tier: only rendered once the tuner has measured
    // something, so untuned deployments keep their exposition unchanged.
    if snapshot.tune_candidates_tried > 0 || !snapshot.tune_states.is_empty() {
        scalar(
            &mut out,
            "recblock_tune_generation",
            "gauge",
            "Times a tuned plan replaced an incumbent (stable once converged).",
            snapshot.tune_generation as f64,
        );
        scalar(
            &mut out,
            "recblock_tune_candidates_tried_total",
            "counter",
            "Candidate tunings measured by the canary scheduler.",
            snapshot.tune_candidates_tried as f64,
        );
        scalar(
            &mut out,
            "recblock_tune_winners_installed_total",
            "counter",
            "Winning tunings installed into the cache and queued for write-back.",
            snapshot.tune_winners_installed as f64,
        );
        scalar(
            &mut out,
            "recblock_tune_write_back_retries_total",
            "counter",
            "Plan write-back attempts retried after an I/O error.",
            snapshot.tune_write_back_retries as f64,
        );
        let _ = writeln!(
            out,
            "# HELP recblock_tune_plan_candidates_tried Candidates measured per plan fingerprint."
        );
        let _ = writeln!(out, "# TYPE recblock_tune_plan_candidates_tried gauge");
        for t in &snapshot.tune_states {
            let _ = writeln!(
                out,
                "recblock_tune_plan_candidates_tried{{plan=\"{:016x}\"}} {}",
                t.key.structure.hash, t.tried
            );
        }
        let _ = writeln!(
            out,
            "# HELP recblock_tune_plan_gain Fractional speedup of the winning tuning per plan."
        );
        let _ = writeln!(out, "# TYPE recblock_tune_plan_gain gauge");
        for t in &snapshot.tune_states {
            let _ = writeln!(
                out,
                "recblock_tune_plan_gain{{plan=\"{:016x}\",winner=\"{}\"}} {}",
                t.key.structure.hash,
                escape_label_value(t.winner.as_deref().unwrap_or("")),
                t.gain
            );
        }
    }

    // Request-tracing tier: one series per retained hop and span. Bounded
    // by the hop log's capacity; node and tenant labels arrive from the
    // wire, so both are escaped like tenant names.
    if snapshot.traced_requests > 0 {
        scalar(
            &mut out,
            "recblock_trace_hops_total",
            "counter",
            "Traced request hops recorded on this node.",
            snapshot.traced_requests as f64,
        );
        let _ = writeln!(
            out,
            "# HELP recblock_trace_hop_seconds Per-hop spans of recently traced requests."
        );
        let _ = writeln!(out, "# TYPE recblock_trace_hop_seconds gauge");
        for h in &snapshot.trace_hops {
            for (span, ns) in
                [("solve", h.solve_ns), ("respond", h.respond_ns), ("total", h.total_ns)]
            {
                let _ = writeln!(
                    out,
                    "recblock_trace_hop_seconds{{trace_id=\"{:016x}\",node=\"{}\",tenant=\"{}\",\
                     span=\"{span}\",proxied=\"{}\"}} {}",
                    h.trace_id,
                    escape_label_value(&h.node),
                    escape_label_value(&h.tenant),
                    h.proxied,
                    ns as f64 / 1e9
                );
            }
        }
    }

    counter_family(
        &mut out,
        "recblock_resilience_events_total",
        "Failures contained by the resilience machinery.",
        "event",
        &[
            ("worker_panic", snapshot.worker_panics),
            ("store_quarantined", snapshot.store_quarantined),
        ],
    );
    scalar(
        &mut out,
        "recblock_health",
        "gauge",
        "Health state: 0 healthy, 1 degraded, 2 draining.",
        snapshot.health as u8 as f64,
    );
    scalar(
        &mut out,
        "recblock_queue_depth",
        "gauge",
        "Queued right-hand sides right now.",
        snapshot.queue_depth as f64,
    );
    scalar(
        &mut out,
        "recblock_queue_depth_peak",
        "gauge",
        "Highest queue depth observed.",
        snapshot.queue_depth_peak as f64,
    );
    out
}

fn scalar(out: &mut String, name: &str, ty: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {ty}");
    let _ = writeln!(out, "{name} {value}");
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline would otherwise terminate (or corrupt) the
/// `label="value"` syntax. Tenant names arrive from the wire, so a
/// hostile name must not be able to forge extra samples or labels.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn counter_family(out: &mut String, name: &str, help: &str, label: &str, values: &[(&str, u64)]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (value, count) in values {
        let _ = writeln!(out, "{name}{{{label}=\"{}\"}} {count}", escape_label_value(value));
    }
}

/// Emit cumulative `_bucket` series for sparse `(upper bound ns, count)`
/// buckets. The open-ended bucket (bound `u64::MAX`) folds into `+Inf`.
/// `labels` is either empty or a `key="value",` prefix for the `le` label.
fn histogram_series(out: &mut String, name: &str, labels: &str, buckets: &[(u64, u64)]) {
    let mut cum = 0u64;
    for &(ub, c) in buckets {
        cum += c;
        if ub == u64::MAX {
            continue; // represented by the +Inf bucket below
        }
        let le = ub as f64 / 1e9;
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {cum}");
}

fn stage_series(out: &mut String, s: &StageSnapshot) {
    let labels = format!("stage=\"{}\",", s.stage.name());
    histogram_series(out, "recblock_stage_seconds", &labels, &s.buckets);
    let _ = writeln!(
        out,
        "recblock_stage_seconds_sum{{stage=\"{}\"}} {}",
        s.stage.name(),
        s.total.as_secs_f64()
    );
    let _ =
        writeln!(out, "recblock_stage_seconds_count{{stage=\"{}\"}} {}", s.stage.name(), s.count);
}

#[cfg(test)]
mod tests {
    use crate::metrics::{Metrics, Stage};
    use std::time::Duration;

    #[test]
    fn renders_counters_histograms_and_gauges() {
        let m = Metrics::default();
        m.record_batch(3);
        m.record_latency(Duration::from_micros(500));
        m.record_latency(Duration::from_secs(20)); // open-ended bucket
        m.record_stage(Stage::Solve, Duration::from_micros(400));
        m.queue_depth_changed(2);
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("# TYPE recblock_requests_total counter"), "{text}");
        assert!(text.contains("# TYPE recblock_queue_depth gauge"));
        assert!(text.contains("recblock_queue_depth 2"));
        assert!(text.contains("# TYPE recblock_request_latency_seconds histogram"));
        // Two samples total; the +Inf bucket must equal _count.
        assert!(text.contains("recblock_request_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("recblock_request_latency_seconds_count 2"));
        // The ~20 s sample appears only in +Inf — no finite bound covers it.
        assert!(!text.contains("le=\"17.179869184\"} 2"), "{text}");
        assert!(text.contains("recblock_stage_seconds_bucket{stage=\"solve\",le=\"+Inf\"} 1"));
        assert!(text.contains("recblock_batch_size_sum 3"));
    }

    #[test]
    fn tenant_slices_render_with_labels() {
        let m = Metrics::default();
        let alpha = m.tenant("alpha");
        alpha.admitted.fetch_add(7, std::sync::atomic::Ordering::Relaxed);
        alpha.admission_rejected.fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        alpha.shed_by_cost.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        alpha.admitted_cost.fetch_add(12345, std::sync::atomic::Ordering::Relaxed);
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("# TYPE recblock_tenant_requests_total counter"), "{text}");
        assert!(
            text.contains("recblock_tenant_requests_total{tenant=\"alpha\",event=\"admitted\"} 7")
        );
        assert!(text.contains(
            "recblock_tenant_requests_total{tenant=\"alpha\",event=\"admission_rejected\"} 2"
        ));
        assert!(text
            .contains("recblock_tenant_requests_total{tenant=\"alpha\",event=\"shed_by_cost\"} 1"));
        assert!(text.contains("recblock_tenant_admitted_cost_total{tenant=\"alpha\"} 12345"));
        assert!(text.contains("recblock_tenant_queue_depth{tenant=\"alpha\"} 0"));
        // No tenants registered → no tenant families at all.
        let empty = Metrics::default().snapshot().render_prometheus();
        assert!(!empty.contains("recblock_tenant_"), "{empty}");
    }

    #[test]
    fn hostile_tenant_names_are_escaped() {
        let m = Metrics::default();
        // A name designed to break out of `tenant="…"` and forge a sample.
        let hostile = "evil\"} 999\nforged_metric{x=\"\\";
        let t = m.tenant(hostile);
        t.admitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let text = m.snapshot().render_prometheus();
        // The raw quote/newline/backslash must not survive unescaped: the
        // injected newline never starts a line, so the forged series exists
        // only as escaped text inside the tenant label, and every
        // non-comment line still parses as `name{labels} value`.
        assert!(!text.lines().any(|l| l.starts_with("forged_metric")), "{text}");
        assert!(
            text.contains(r#"tenant="evil\"} 999\nforged_metric{x=\"\\""#),
            "escaped name missing: {text}"
        );
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in line: {line}");
            // A quote inside a label value must always be preceded by a
            // backslash — otherwise the exposition grammar is corrupted.
            let bytes = series.as_bytes();
            if let (Some(open), Some(_)) = (series.find('{'), series.rfind('}')) {
                let mut i = open + 1;
                let mut in_value = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if in_value => i += 1, // skip escaped char
                        b'"' => in_value = !in_value,
                        _ => {}
                    }
                    i += 1;
                }
                assert!(!in_value, "unterminated label value in line: {line}");
            }
        }
    }

    #[test]
    fn cluster_families_render_once_ring_applied() {
        let m = Metrics::default();
        let empty = m.snapshot().render_prometheus();
        assert!(!empty.contains("recblock_cluster_"), "{empty}");
        m.cluster_members.store(3, std::sync::atomic::Ordering::Relaxed);
        m.cluster_ring_epoch.store(2, std::sync::atomic::Ordering::Relaxed);
        m.cluster_proxied.fetch_add(5, std::sync::atomic::Ordering::Relaxed);
        m.cluster_plans_pushed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("recblock_cluster_requests_total{event=\"proxied\"} 5"), "{text}");
        assert!(text.contains("recblock_cluster_plan_migrations_total{direction=\"pushed\"} 1"));
        assert!(text.contains("recblock_cluster_ring_epoch 2"));
        assert!(text.contains("recblock_cluster_members 3"));
    }

    #[test]
    fn tune_families_render_once_tuner_measured() {
        use crate::metrics::TuneState;
        use recblock_matrix::Fingerprint;
        use recblock_store::PlanKey;
        let m = Metrics::default();
        let empty = m.snapshot().render_prometheus();
        assert!(!empty.contains("recblock_tune_"), "{empty}");
        m.tune_generation.store(1, std::sync::atomic::Ordering::Relaxed);
        m.tune_candidates_tried.fetch_add(8, std::sync::atomic::Ordering::Relaxed);
        m.tune_winners_installed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        m.publish_tune_state(TuneState {
            key: PlanKey {
                structure: Fingerprint { nrows: 5, ncols: 5, nnz: 9, hash: 0xABCD },
                values: 1,
            },
            generation: 1,
            tried: 8,
            total: 8,
            done: true,
            winner: Some("p2p".into()),
            gain: 0.1,
        });
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("recblock_tune_generation 1"), "{text}");
        assert!(text.contains("recblock_tune_candidates_tried_total 8"));
        assert!(text.contains("recblock_tune_plan_candidates_tried{plan=\"000000000000abcd\"} 8"));
        assert!(
            text.contains("recblock_tune_plan_gain{plan=\"000000000000abcd\",winner=\"p2p\"} 0.1")
        );
    }

    #[test]
    fn trace_hops_render_with_escaped_labels() {
        use crate::metrics::TraceHop;
        use recblock_matrix::Fingerprint;
        use recblock_store::PlanKey;
        let m = Metrics::default();
        let empty = m.snapshot().render_prometheus();
        assert!(!empty.contains("recblock_trace_"), "{empty}");
        // Hostile node and tenant names must not forge series.
        m.record_trace_hop(TraceHop {
            trace_id: 0xDEAD_BEEF,
            key: PlanKey {
                structure: Fingerprint { nrows: 4, ncols: 4, nnz: 4, hash: 1 },
                values: 2,
            },
            node: "n\"} 1\nforged_metric{x=\"".into(),
            tenant: "t\\".into(),
            k: 2,
            solve_ns: 2_000_000,
            respond_ns: 1_000,
            total_ns: 2_001_000,
            proxied: true,
        });
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("recblock_trace_hops_total 1"), "{text}");
        assert!(text.contains("trace_id=\"00000000deadbeef\""), "{text}");
        assert!(text.contains("span=\"solve\""), "{text}");
        assert!(text.contains("proxied=\"true\""), "{text}");
        assert!(!text.lines().any(|l| l.starts_with("forged_metric")), "{text}");
        // Every sample line still parses as `name{labels} value` with
        // balanced quotes (same grammar check as the tenant battery).
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in line: {line}");
            let bytes = series.as_bytes();
            if let Some(open) = series.find('{') {
                let mut i = open + 1;
                let mut in_value = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if in_value => i += 1,
                        b'"' => in_value = !in_value,
                        _ => {}
                    }
                    i += 1;
                }
                assert!(!in_value, "unterminated label value in line: {line}");
            }
        }
    }

    #[test]
    fn le_bounds_never_use_scientific_notation() {
        let m = Metrics::default();
        m.record_latency(Duration::from_nanos(1)); // tiny: le = 2e-9 territory
        let text = m.snapshot().render_prometheus();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                !line.contains("e-") && !line.contains("E-"),
                "scientific notation in exposition line: {line}"
            );
        }
    }
}
