//! recblock-net: TCP front end for the SpTRSV solve service.
//!
//! The paper's serving story ends at an in-process API; this crate puts a
//! network boundary in front of it without changing the compute tier's
//! guarantees. One event-loop thread (no async runtime, no external
//! dependencies — readiness comes from a vendored epoll/poll shim in
//! [`poll`]) speaks the length-prefixed [`frame`] protocol, applies
//! per-tenant admission control and weighted-fair scheduling ([`qos`]),
//! and routes admitted right-hand sides into
//! [`recblock_serve::SolveService`] through its pluggable
//! [`recblock_serve::ResponseSink`] transport boundary.
//!
//! Requests carry a matrix **fingerprint**, never the matrix: the server
//! only serves plans already warm in the cache or the persistent store
//! (provision them with `planctl precompute`), which keeps the wire cost
//! proportional to the right-hand sides and makes `PlanNotFound` a typed,
//! retryable condition.
//!
//! See `DESIGN.md` §11 for the frame layout, the QoS semantics and the
//! overload ladder.

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod error;
pub mod frame;
pub mod poll;
pub mod qos;
pub mod server;

pub use client::{ClientConfig, NetClient, RetryPolicy, SolveOutcome};
pub use config::{NetConfig, TenantPolicy};
pub use error::{ErrCode, NetError};
pub use frame::{
    FrameError, FrameKind, Header, MemberInfo, RingStateMsg, StatReply, TenantStat, TraceHopMsg,
};
pub use qos::{FairQueue, TokenBucket};
pub use server::{ClusterHooks, NetCtl, NetServer, Route};
