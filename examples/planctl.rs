//! `planctl`: operate on persisted solve plans from the command line.
//!
//! Subcommands:
//!
//! ```text
//! planctl precompute <matrix.mtx> <store-dir>   build the plan and persist it
//! planctl inspect    <plan-file>                print the file's META section
//! planctl verify     <plan-file> <matrix.mtx>   full decode + key check + test solve
//! planctl explain    <matrix.mtx|plan-file> [--kernels]
//!                                               why each block got its kernel
//! planctl tune       <matrix.mtx> <store-dir>   measure the candidate grid, persist the winner
//! planctl ping       <host:port>                one RBNET round trip to a server
//! planctl stat       <host:port>                warm status + per-tenant queues
//! planctl trace      <host:port> <matrix.mtx>   dump recent traced request hops for the plan
//! ```
//!
//! `precompute` is the deploy-time half of the workflow: run it once per
//! matrix (CI, a cron job, an artifact build), ship the store directory
//! with the service, and every process start skips preprocessing.
//! `inspect` reads only the META section, so it is instant even on large
//! plans. `verify` is the paranoid path: full checksum + decode + a real
//! solve checked against the matrix. `explain` prints the selection report
//! — per block, the statistics Algorithm 7 saw, the kernel it chose, and
//! the threshold that decided; `--kernels` adds the rejected candidates
//! and level-shape histograms. `ping` and `stat` speak one RBNET frame to
//! a running `serve_demo --listen` (or any `recblock-net` server): `ping`
//! measures liveness, `stat` prints warm-plan status and per-tenant queue
//! depths for operators watching the QoS tier.
//!
//! `tune` closes the loop: it replays the stored plan under the bounded
//! candidate grid (warmup + median-of-k per candidate, hysteresis against
//! noise), prints the per-candidate timings, and — when a candidate wins —
//! persists the retuned plan so every later load is pre-tuned. `trace`
//! queries a server's recent end-to-end request spans for one plan; a
//! proxied cluster solve shows up as two hops sharing one trace id, the
//! origin's marked `via proxy`.

use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock::explain::{tune_drift, SelectionReport};
use recblock::{tune_blocked, RecBlockSolver, SolverOptions, TuneOptions};
use recblock_matrix::triangular::lower_with_diag;
use recblock_matrix::vector::residual_inf;
use recblock_matrix::{mm, Csr, Scalar};
use recblock_net::NetClient;
use recblock_store::{inspect_plan_file, read_plan_file, ArtifactKind, PlanKey, PlanStore};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("precompute") if args.len() == 3 => precompute(&args[1], &args[2]),
        Some("inspect") if args.len() == 2 => inspect(&args[1]),
        Some("verify") if args.len() == 3 => verify(&args[1], &args[2]),
        Some("explain") if args.len() == 2 || args.len() == 3 => {
            let kernels = args[1..].iter().any(|a| a == "--kernels");
            match args[1..].iter().find(|a| *a != "--kernels") {
                Some(target) if args.len() == 2 + usize::from(kernels) => explain(target, kernels),
                _ => usage(),
            }
        }
        Some("tune") if args.len() == 3 => tune(&args[1], &args[2]),
        Some("ping") if args.len() == 2 => ping(&args[1]),
        Some("stat") if args.len() == 2 => stat(&args[1]),
        Some("trace") if args.len() == 3 => trace(&args[1], &args[2]),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("planctl: {e}");
        std::process::exit(1);
    }
}

fn usage() -> Result<(), String> {
    eprintln!(
        "usage:\n  planctl precompute <matrix.mtx> <store-dir>\n  \
         planctl inspect <plan-file>\n  planctl verify <plan-file> <matrix.mtx>\n  \
         planctl explain <matrix.mtx|plan-file> [--kernels]\n  \
         planctl tune <matrix.mtx> <store-dir>\n  \
         planctl ping <host:port>\n  planctl stat <host:port>\n  \
         planctl trace <host:port> <matrix.mtx>"
    );
    std::process::exit(2);
}

fn load_lower(mtx: &str) -> Result<Csr<f64>, String> {
    let a: Csr<f64> =
        mm::read_matrix_market_file(mtx).map_err(|e| format!("reading {mtx}: {e}"))?;
    lower_with_diag(&a).map_err(|e| format!("extracting lower triangle: {e}"))
}

fn precompute(mtx: &str, store_dir: &str) -> Result<(), String> {
    let l = load_lower(mtx)?;
    println!("matrix: {} rows, {} nnz", l.nrows(), l.nnz());
    let key = PlanKey::of(&l);

    let t0 = std::time::Instant::now();
    let plan = BlockedTri::build(
        &l,
        &BlockedOptions { depth: DepthRule::Fixed(4), ..BlockedOptions::default() },
    )
    .map_err(|e| format!("preprocessing failed: {e}"))?;
    let build_s = t0.elapsed().as_secs_f64();
    println!(
        "built plan: {} blocks (depth {}) in {:.1} ms",
        plan.nblocks(),
        plan.depth(),
        build_s * 1e3
    );

    let store = PlanStore::open(store_dir).map_err(|e| format!("opening store: {e}"))?;
    let path = store.save(&plan, &key, build_s).map_err(|e| format!("saving plan: {e}"))?;
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("saved {} ({} bytes) for key {}", path.display(), bytes, key);
    Ok(())
}

fn inspect(plan_file: &str) -> Result<(), String> {
    let meta = inspect_plan_file(Path::new(plan_file)).map_err(|e| e.to_string())?;
    println!("file     : {plan_file}");
    println!(
        "kind     : {}",
        match meta.kind {
            ArtifactKind::Blocked => "blocked plan",
            ArtifactKind::Packed => "packed arena",
        }
    );
    println!("scalar   : f{} ({} bytes)", meta.scalar_bytes as usize * 8, meta.scalar_bytes);
    println!("key      : {}", meta.key);
    println!("system   : n = {}, nnz = {}", meta.n, meta.nnz);
    println!("plan     : {} blocks, depth {}", meta.nblocks, meta.depth);
    println!("built in : {:.3} ms (what a load saves)", meta.build_cost * 1e3);
    Ok(())
}

fn verify(plan_file: &str, mtx: &str) -> Result<(), String> {
    let meta = inspect_plan_file(Path::new(plan_file)).map_err(|e| e.to_string())?;
    match meta.scalar_bytes {
        8 => verify_typed::<f64>(plan_file, mtx),
        4 => verify_typed::<f32>(plan_file, mtx),
        b => Err(format!("unsupported scalar width {b}")),
    }
}

fn verify_typed<S: Scalar>(plan_file: &str, mtx: &str) -> Result<(), String> {
    let a: Csr<S> = mm::read_matrix_market_file(mtx).map_err(|e| format!("reading {mtx}: {e}"))?;
    let l = lower_with_diag(&a).map_err(|e| format!("extracting lower triangle: {e}"))?;

    let loaded = read_plan_file::<S>(Path::new(plan_file)).map_err(|e| e.to_string())?;
    println!("decode   : ok ({} bytes, all checksums pass)", loaded.bytes);

    let expected = PlanKey::of(&l);
    if loaded.meta.key != expected {
        return Err(format!(
            "key mismatch: plan is for {}, matrix is {}",
            loaded.meta.key, expected
        ));
    }
    println!("key      : ok ({expected})");

    let b: Vec<S> = (0..l.nrows()).map(|i| S::from_f64(1.0 + ((i % 89) as f64) / 89.0)).collect();
    let x = loaded.blocked.solve(&b).map_err(|e| format!("solve failed: {e}"))?;
    let r = residual_inf(&l, &x, &b).map_err(|e| format!("residual: {e}"))?;
    let tol = if S::BYTES == 8 { 1e-8 } else { 1e-3 };
    if r >= tol {
        return Err(format!("solve residual {r:.2e} exceeds tolerance {tol:.0e}"));
    }
    println!("solve    : ok (relative residual {r:.2e})");
    println!("verified : plan is usable for this matrix");
    Ok(())
}

fn explain(target: &str, kernels: bool) -> Result<(), String> {
    let is_plan = Path::new(target)
        .extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e == "rbplan" || e == "rbpack");
    if is_plan {
        let meta = inspect_plan_file(Path::new(target)).map_err(|e| e.to_string())?;
        match meta.scalar_bytes {
            8 => explain_plan::<f64>(target, kernels),
            4 => explain_plan::<f32>(target, kernels),
            b => Err(format!("unsupported scalar width {b}")),
        }
    } else {
        let l = load_lower(target)?;
        let solver = RecBlockSolver::new(&l, SolverOptions::default())
            .map_err(|e| format!("preprocessing failed: {e}"))?;
        print_report(solver.explain(), kernels);
        Ok(())
    }
}

fn explain_plan<S: Scalar>(plan_file: &str, kernels: bool) -> Result<(), String> {
    let loaded = read_plan_file::<S>(Path::new(plan_file)).map_err(|e| e.to_string())?;
    println!(
        "plan file: {} ({} bytes, read {:.2?} + decode {:.2?})",
        plan_file, loaded.bytes, loaded.timings.read, loaded.timings.decode
    );
    let drift = tune_drift(&loaded.blocked.tune());
    if drift.is_empty() {
        println!("tuning   : defaults (never tuned, or the incumbent kept its seat)");
    } else {
        println!("tuning   : persisted [{drift}]");
    }
    print_report(loaded.blocked.selection_report(), kernels);
    Ok(())
}

fn tune(mtx: &str, store_dir: &str) -> Result<(), String> {
    let l = load_lower(mtx)?;
    let key = PlanKey::of(&l);
    let store = PlanStore::open(store_dir).map_err(|e| format!("opening store: {e}"))?;
    let plan = match store.load::<f64>(&key).map_err(|e| format!("loading plan: {e}"))? {
        Some(loaded) => {
            println!("plan     : loaded from store for key {key}");
            loaded.blocked
        }
        None => {
            let built = BlockedTri::build(
                &l,
                &BlockedOptions { depth: DepthRule::Fixed(4), ..BlockedOptions::default() },
            )
            .map_err(|e| format!("preprocessing failed: {e}"))?;
            println!("plan     : not in store, built fresh for key {key}");
            built
        }
    };

    let b: Vec<f64> = (0..l.nrows()).map(|i| 1.0 + ((i % 89) as f64) / 89.0).collect();
    let report = tune_blocked(&plan, &b, &TuneOptions::default())
        .map_err(|e| format!("tuning failed: {e}"))?;

    println!("incumbent: {:>10.1} us/solve", report.base_ns as f64 / 1e3);
    for o in &report.outcomes {
        let verdict = if !o.bit_identical {
            "DISQUALIFIED (solution diverged)"
        } else if report.base_ns > 0 && o.median_ns < report.base_ns {
            "faster"
        } else {
            "slower"
        };
        println!(
            "  {:<12} {:>10.1} us/solve  {:>+7.1}%  {}",
            o.name,
            o.median_ns as f64 / 1e3,
            (o.median_ns as f64 / report.base_ns.max(1) as f64 - 1.0) * 100.0,
            verdict
        );
    }
    match report.winner_tune() {
        Some(win) => {
            let outcome = report.winner_outcome().expect("winner implies outcome");
            let tuned = plan.retuned(win).map_err(|e| format!("applying winner: {e}"))?;
            let path = store.save(&tuned, &key, 0.0).map_err(|e| format!("saving plan: {e}"))?;
            println!(
                "winner   : {} ({:.1}% faster, beyond the {:.0}% hysteresis margin)",
                outcome.name,
                report.winner_gain() * 100.0,
                TuneOptions::default().min_improvement * 100.0
            );
            println!("tuning   : [{}]", tune_drift(&win));
            println!("persisted: {} (every later load is pre-tuned)", path.display());
        }
        None => println!(
            "winner   : none — no candidate beat the incumbent by {:.0}%; plan unchanged",
            TuneOptions::default().min_improvement * 100.0
        ),
    }
    Ok(())
}

fn print_report(report: &SelectionReport, kernels: bool) {
    if kernels {
        print!("{}", report.detail());
    } else {
        print!("{report}");
    }
}

fn ping(addr: &str) -> Result<(), String> {
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.set_timeout(Some(std::time::Duration::from_secs(10))).map_err(|e| e.to_string())?;
    let rtt = client.ping().map_err(|e| format!("ping: {e}"))?;
    println!("{addr}: alive, round trip {rtt:.2?}");
    Ok(())
}

fn stat(addr: &str) -> Result<(), String> {
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.set_timeout(Some(std::time::Duration::from_secs(10))).map_err(|e| e.to_string())?;
    let stat = client.stat().map_err(|e| format!("stat: {e}"))?;
    // The health byte mirrors recblock_serve::Health's discriminants.
    let health = match stat.health {
        0 => "healthy",
        1 => "degraded (resilience machinery has fired; see /metrics)",
        2 => "draining (finishing in-flight work, refusing new solves)",
        other => return Err(format!("server sent unknown health byte {other}")),
    };
    println!("server    : {addr}{}", if stat.draining { " (draining)" } else { "" });
    println!("health    : {health}");
    println!("plans warm: {}", stat.plans_warm);
    println!("in flight : {} columns", stat.inflight);
    if stat.tenants.is_empty() {
        println!("tenants   : none seen yet");
        return Ok(());
    }
    println!("tenants   :");
    for t in &stat.tenants {
        let outstanding = t.admitted.saturating_sub(t.completed);
        println!(
            "  {:<16} queued {:>4}  admitted {:>6}  completed {:>6}  \
             outstanding {:>4}  rejected {:>4}  shed {:>4}",
            t.tenant,
            t.queue_depth,
            t.admitted,
            t.completed,
            outstanding,
            t.admission_rejected,
            t.shed
        );
    }
    Ok(())
}

fn trace(addr: &str, mtx: &str) -> Result<(), String> {
    let l = load_lower(mtx)?;
    let key = PlanKey::of(&l);
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.set_timeout(Some(std::time::Duration::from_secs(10))).map_err(|e| e.to_string())?;
    let mut hops = client.trace(&key).map_err(|e| format!("trace: {e}"))?;
    if hops.is_empty() {
        println!("no traced requests recorded on {addr} for key {key}");
        println!("(only solves sent with a trace id are recorded; plain solves stay untraced)");
        return Ok(());
    }
    // Group hops into per-request timelines: one id spans every hop of a
    // request, however many nodes proxied it.
    hops.sort_by_key(|h| h.trace_id);
    println!("{} hop(s) on {addr} for key {key}", hops.len());
    let mut last_id = 0u64;
    for h in &hops {
        if h.trace_id != last_id {
            println!("trace {:016x}", h.trace_id);
            last_id = h.trace_id;
        }
        println!(
            "  {:<16} tenant {:<12} k {:>3}  solve {:>10.1} us  respond {:>8.1} us  \
             total {:>10.1} us{}",
            h.node,
            h.tenant,
            h.k,
            h.solve_ns as f64 / 1e3,
            h.respond_ns as f64 / 1e3,
            h.total_ns as f64 / 1e3,
            if h.proxied { "  (via proxy)" } else { "" }
        );
    }
    Ok(())
}
