//! End-to-end request tracing across cluster hops.
//!
//! A traced solve sent to a non-owner must be proxied to the plan's
//! owner with the *same* trace id, so querying both nodes afterwards
//! yields one distributed timeline: a `proxied` hop on the origin and a
//! local hop on the owner, under a single id minted at admission.

use recblock_cluster::{ClusterConfig, ClusterNode};
use recblock_matrix::generate;
use recblock_net::NetClient;
use recblock_net::NetConfig;
use recblock_store::PlanKey;
use std::sync::Arc;
use std::time::Duration;

fn start_cluster(n: usize) -> Vec<ClusterNode<f64>> {
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let service = Arc::new(recblock_serve::SolveService::<f64>::new(
            recblock_serve::ServeConfig::default().with_workers(2),
        ));
        let mut config = ClusterConfig::new(format!("node-{i}"));
        config.replicas = 1;
        config.pull_retry = Duration::from_millis(5);
        let node = ClusterNode::start("127.0.0.1:0", config, NetConfig::default(), service)
            .expect("start node");
        nodes.push(node);
    }
    let seed_addr = nodes[0].addr().to_string();
    for node in &nodes[1..] {
        node.join(&seed_addr).expect("join cluster");
    }
    nodes
}

#[test]
fn one_trace_id_spans_both_hops_of_a_proxied_solve() {
    let nodes = start_cluster(2);
    let l = generate::random_lower::<f64>(300, 4.0, 61);
    let key = PlanKey::of(&l);
    for node in &nodes {
        node.warm(&l).expect("warm");
    }

    // replicas = 1: exactly one owner, so the other node must proxy.
    let owners = nodes[0].coordinator().owners_of(&key);
    assert_eq!(owners.len(), 1);
    let owner_name = owners[0].0.clone();
    let origin =
        nodes.iter().find(|n| n.name() != owner_name).expect("2 nodes, 1 owner: one outsider");
    let owner = nodes.iter().find(|n| n.name() == owner_name).unwrap();

    let rhs: Vec<f64> = (0..300).map(|r| ((r * 13 + 1) as f64 * 0.021).cos()).collect();
    let mut client = NetClient::connect(origin.addr()).expect("connect origin");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // trace_id 0 asks the origin to mint one at admission.
    let got = client
        .solve_multi_traced(0, "acme", &key, &[&rhs], 0)
        .expect("traced solve through the proxy path");
    assert_eq!(got.len(), 1);

    // An untraced solve must not add hops (the id separates requests).
    client.solve_multi("acme", &key, &[&rhs], 0).expect("untraced solve");

    let origin_hops = client.trace(&key).expect("origin trace");
    let mut owner_client = NetClient::connect(owner.addr()).expect("connect owner");
    let owner_hops = owner_client.trace(&key).expect("owner trace");

    assert_eq!(origin_hops.len(), 1, "one traced request, one origin hop: {origin_hops:?}");
    assert_eq!(owner_hops.len(), 1, "the proxied hop lands on the owner: {owner_hops:?}");
    let (o, w) = (&origin_hops[0], &owner_hops[0]);
    assert_ne!(o.trace_id, 0, "the origin must mint a non-zero id");
    assert_eq!(o.trace_id, w.trace_id, "one id spans both hops");
    assert!(o.proxied, "the origin hop is the relay");
    assert!(!w.proxied, "the owner hop is the local solve");
    assert_eq!((o.node.as_str(), w.node.as_str()), (origin.name(), owner.name()));
    assert_eq!((o.tenant.as_str(), w.tenant.as_str()), ("acme", "acme"));
    assert_eq!((o.k, w.k), (1, 1));
    for hop in [o, w] {
        assert!(hop.total_ns >= hop.solve_ns, "total covers the solve span: {hop:?}");
        assert!(hop.total_ns > 0);
    }
    assert!(
        o.solve_ns >= w.total_ns,
        "the origin's solve span contains the owner's whole hop: {o:?} vs {w:?}"
    );

    // The hops surface in Prometheus with the shared id.
    let prom = origin.service().metrics().render_prometheus();
    assert!(prom.contains("recblock_trace_hops_total 1"), "{prom}");
    assert!(prom.contains(&format!("trace_id=\"{:016x}\"", o.trace_id)), "{prom}");
}

#[test]
fn local_traced_solve_records_a_single_unproxied_hop() {
    let nodes = start_cluster(1);
    let l = generate::random_lower::<f64>(200, 3.0, 62);
    let key = PlanKey::of(&l);
    nodes[0].warm(&l).expect("warm");

    let rhs: Vec<f64> = (0..200).map(|r| (r as f64 * 0.01).sin()).collect();
    let mut client = NetClient::connect(nodes[0].addr()).expect("connect");
    // Two traced solves: ids must differ (minted per request).
    client.solve_multi_traced(0, "acme", &key, &[&rhs], 0).expect("first");
    client.solve_multi_traced(0, "acme", &key, &[&rhs], 0).expect("second");
    let hops = client.trace(&key).expect("trace");
    assert_eq!(hops.len(), 2, "{hops:?}");
    assert_ne!(hops[0].trace_id, hops[1].trace_id, "each admission mints a fresh id");
    assert!(hops.iter().all(|h| !h.proxied && h.node == "node-0" && h.trace_id != 0));
}
