//! Vendored, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in a fully offline environment, so the real
//! `rand` cannot be fetched from crates.io. This shim reimplements exactly
//! the surface the workspace uses — the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, uniform range sampling, Bernoulli draws and
//! Fisher–Yates shuffling — with the same trait shapes, so swapping the
//! real crate back in is a one-line `Cargo.toml` change.
//!
//! The generators are deterministic: no OS entropy is ever consulted, and
//! no hash-map randomness leaks in. Streams are *not* bit-identical to
//! upstream `rand` (the workspace only relies on determinism and
//! statistical quality, never on exact upstream streams).

#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly like
    /// upstream `rand` does, so small seeds still fill the whole key.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as the shim's `SmallRng`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New generator from a raw state word.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range (the subset of
/// `rand::distributions::uniform::SampleRange` the workspace uses).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening-multiply rejection sampling (Lemire): unbiased
                // and branch-cheap.
                loop {
                    let r = rng.next_u64();
                    let (hi, lo) = {
                        let m = (r as u128) * (span as u128);
                        ((m >> 64) as u64, m as u64)
                    };
                    if lo < span {
                        let thresh = span.wrapping_neg() % span;
                        if lo < thresh {
                            continue;
                        }
                    }
                    return (self.start as u64).wrapping_add(hi) as $t;
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the excluded endpoint
                // (probability ~2^-53): fall back to the inclusive start.
                if v >= self.end as f64 {
                    self.start
                } else {
                    v as $t
                }
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// User-facing random sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice helpers (the subset of `rand::seq::SliceRandom` the workspace uses).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// Drop-in analogue of `rand::rngs`.
pub mod rngs {
    /// A small fast generator (SplitMix64 here).
    pub type SmallRng = super::SplitMix64;
}

/// Drop-in analogue of `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_int_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.gen_range(0.1f64..1.0);
            assert!((0.1..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements virtually never fixed");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SplitMix64::new(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
