//! `b`-update and `x`-load accounting (the paper's Tables 1 and 2).
//!
//! The paper quantifies the three block algorithms' data traffic on dense
//! lower-triangular matrices: how many items of the right-hand side `b` are
//! updated and how many items of the solution `x` are loaded across the
//! whole solve, as a function of the number of triangular parts. The
//! accounting convention (recovered from the table values) is:
//!
//! * a triangular solve over `s` components updates `s` items of `b`;
//! * an SpMV over an `r × c` block updates `r` items of `b` and loads `c`
//!   items of `x` (for the *dense* analysis, blocks are full).
//!
//! [`TrafficCounts`] implements that convention as counters the block
//! solvers increment, and the `*_formula` functions give the paper's
//! closed forms; tests and the Table 1–2 harness check they coincide on
//! dense matrices.

/// Accumulated traffic of one solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficCounts {
    /// Items of `b` updated (Table 1).
    pub b_updates: usize,
    /// Items of `x` loaded by SpMV (Table 2).
    pub x_loads: usize,
}

impl TrafficCounts {
    /// Account one triangular solve over `s` components.
    pub fn tri(&mut self, s: usize) {
        self.b_updates += s;
    }

    /// Account one (dense-counted) SpMV over an `r × c` block.
    pub fn spmv(&mut self, r: usize, c: usize) {
        self.b_updates += r;
        self.x_loads += c;
    }
}

/// Table 1, column block: `2^(x−1)·n + 0.5·n` where `x = log2(parts)` —
/// equivalently `n·(parts + 1) / 2`.
pub fn column_b_updates(n: usize, parts: usize) -> f64 {
    n as f64 * (parts as f64 + 1.0) / 2.0
}

/// Table 1, row block: `2n − 2^(−x)·n` — equivalently `2n − n/parts`.
pub fn row_b_updates(n: usize, parts: usize) -> f64 {
    2.0 * n as f64 - n as f64 / parts as f64
}

/// Table 1, recursive block: `0.5·n·x + n` where `x = log2(parts)`.
pub fn recursive_b_updates(n: usize, parts: usize) -> f64 {
    0.5 * n as f64 * (parts as f64).log2() + n as f64
}

/// Table 2, column block: `n − 2^(−x)·n` — equivalently `n − n/parts`.
pub fn column_x_loads(n: usize, parts: usize) -> f64 {
    n as f64 - n as f64 / parts as f64
}

/// Table 2, row block: `2^(x−1)·n − 0.5·n` — equivalently `n·(parts − 1)/2`.
pub fn row_x_loads(n: usize, parts: usize) -> f64 {
    n as f64 * (parts as f64 - 1.0) / 2.0
}

/// Table 2, recursive block: `0.5·n·x`.
pub fn recursive_x_loads(n: usize, parts: usize) -> f64 {
    0.5 * n as f64 * (parts as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1000;

    #[test]
    fn table1_values() {
        // The paper's Table 1 row by row (coefficients of n).
        assert_eq!(column_b_updates(N, 4), 2.5 * N as f64);
        assert_eq!(column_b_updates(N, 16), 8.5 * N as f64);
        assert_eq!(column_b_updates(N, 256), 128.5 * N as f64);
        assert_eq!(column_b_updates(N, 65536), 32768.5 * N as f64);

        assert_eq!(row_b_updates(N, 4), 1.75 * N as f64);
        assert!((row_b_updates(N, 16) - 1.9375 * N as f64).abs() < 1e-9);

        assert_eq!(recursive_b_updates(N, 4), 2.0 * N as f64);
        assert_eq!(recursive_b_updates(N, 16), 3.0 * N as f64);
        assert_eq!(recursive_b_updates(N, 256), 5.0 * N as f64);
        assert_eq!(recursive_b_updates(N, 65536), 9.0 * N as f64);
    }

    #[test]
    fn table2_values() {
        assert_eq!(column_x_loads(N, 4), 0.75 * N as f64);
        assert!((column_x_loads(N, 16) - 0.9375 * N as f64).abs() < 1e-9);

        assert_eq!(row_x_loads(N, 4), 1.5 * N as f64);
        assert_eq!(row_x_loads(N, 16), 7.5 * N as f64);
        assert_eq!(row_x_loads(N, 256), 127.5 * N as f64);
        assert_eq!(row_x_loads(N, 65536), 32767.5 * N as f64);

        assert_eq!(recursive_x_loads(N, 4), N as f64);
        assert_eq!(recursive_x_loads(N, 16), 2.0 * N as f64);
        assert_eq!(recursive_x_loads(N, 256), 4.0 * N as f64);
        assert_eq!(recursive_x_loads(N, 65536), 8.0 * N as f64);
    }

    #[test]
    fn recursive_is_the_tradeoff() {
        // The paper's argument: for any nontrivial part count, recursive
        // beats column on updates and row on loads, and its combined traffic
        // is the lowest at scale.
        for parts in [4usize, 16, 256, 65536] {
            assert!(recursive_b_updates(N, parts) <= column_b_updates(N, parts));
            assert!(recursive_x_loads(N, parts) <= row_x_loads(N, parts));
        }
        let combined = |b: f64, x: f64| b + x;
        for parts in [256usize, 65536] {
            let rec = combined(recursive_b_updates(N, parts), recursive_x_loads(N, parts));
            let col = combined(column_b_updates(N, parts), column_x_loads(N, parts));
            let row = combined(row_b_updates(N, parts), row_x_loads(N, parts));
            assert!(rec < col && rec < row);
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut t = TrafficCounts::default();
        t.tri(10);
        t.spmv(20, 5);
        t.tri(3);
        assert_eq!(t.b_updates, 33);
        assert_eq!(t.x_loads, 5);
    }
}
