//! Typed failure modes of the plan store.
//!
//! Every way a plan file can be unusable gets its own variant so callers
//! can distinguish "file from a newer build" from "bits rotted on disk"
//! from "this plan belongs to a different matrix". The serve layer treats
//! all of them the same way — fall back to rebuilding — but diagnostics
//! (`planctl verify`) report the precise cause.

use crate::key::PlanKey;
use recblock_matrix::MatrixError;
use std::fmt;

/// Errors produced while writing, reading or validating plan files.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Underlying filesystem failure (open, read, write, rename, …).
    Io(String),
    /// The file does not start with the plan-store magic bytes.
    WrongMagic,
    /// The file's format version is not the one this build reads.
    WrongVersion {
        /// Version recorded in the file header.
        found: u32,
        /// Version this library writes and reads.
        expected: u32,
    },
    /// A section's CRC32 does not match its payload: on-disk corruption.
    ChecksumMismatch {
        /// Which section failed (`"meta"`, `"body"`).
        section: &'static str,
    },
    /// The file ended before a declared structure was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// The plan inside the file was built for a different matrix (or for
    /// the same structure with different numeric values).
    FingerprintMismatch {
        /// Key the caller asked for.
        expected: PlanKey,
        /// Key recorded in the file.
        found: PlanKey,
    },
    /// The plan stores a different scalar width than the requested type.
    ScalarMismatch {
        /// Byte width of the requested scalar type.
        expected: u8,
        /// Byte width recorded in the file.
        found: u8,
    },
    /// The bytes decode but describe an internally inconsistent plan
    /// (bad tag, trailing bytes, mismatched counts, …).
    Malformed(String),
    /// A reconstructed component failed its validating constructor.
    Matrix(MatrixError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "plan store i/o error: {e}"),
            StoreError::WrongMagic => write!(f, "not a plan file (bad magic)"),
            StoreError::WrongVersion { found, expected } => {
                write!(f, "plan file version {found}, this build reads {expected}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "plan file corrupt: {section} section checksum mismatch")
            }
            StoreError::Truncated { what } => {
                write!(f, "plan file truncated while reading {what}")
            }
            StoreError::FingerprintMismatch { expected, found } => {
                write!(f, "plan is for a different matrix: wanted {expected}, file has {found}")
            }
            StoreError::ScalarMismatch { expected, found } => {
                write!(f, "plan stores {found}-byte scalars, requested type is {expected}-byte")
            }
            StoreError::Malformed(m) => write!(f, "malformed plan file: {m}"),
            StoreError::Matrix(e) => write!(f, "plan failed validation: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl From<MatrixError> for StoreError {
    fn from(e: MatrixError) -> Self {
        StoreError::Matrix(e)
    }
}
