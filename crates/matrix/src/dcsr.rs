//! Doubly-compressed sparse row storage.
//!
//! Section 3.3 of the paper: "the square blocks may be very sparse, meaning
//! that a large portion of rows are probably empty. In such case, we use a
//! method similar to the DCSC format proposed by Buluç and Gilbert and store
//! the CSR data with a simplified row pointer with an extra array saving the
//! actual indices. We call this format DCSR."
//!
//! Only rows that actually hold entries are represented: `row_ids[k]` is the
//! original row index of compressed lane `k`, and `row_ptr` has one slot per
//! *non-empty* row. SpMV kernels over DCSR therefore never touch empty rows,
//! which is where the scalar-DCSR/vector-DCSR kernels win on hyper-sparse
//! square blocks (Figure 5(b)).

use crate::csr::Csr;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// A sparse matrix storing only its non-empty rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Dcsr<S> {
    nrows: usize,
    ncols: usize,
    /// Original indices of the non-empty rows, strictly increasing.
    row_ids: Vec<usize>,
    /// Pointer array over compressed lanes: `len == row_ids.len() + 1`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<S>,
}

impl<S: Scalar> Dcsr<S> {
    /// Compress a CSR matrix, dropping empty rows from the pointer array.
    pub fn from_csr(a: &Csr<S>) -> Self {
        let mut row_ids = Vec::new();
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::with_capacity(a.nnz());
        let mut vals = Vec::with_capacity(a.nnz());
        for i in 0..a.nrows() {
            let (cols, v) = a.row(i);
            if cols.is_empty() {
                continue;
            }
            row_ids.push(i);
            col_idx.extend_from_slice(cols);
            vals.extend_from_slice(v);
            row_ptr.push(col_idx.len());
        }
        Dcsr { nrows: a.nrows(), ncols: a.ncols(), row_ids, row_ptr, col_idx, vals }
    }

    /// Build from parts, validating invariants.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        row_ids: Vec<usize>,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<S>,
    ) -> Result<Self, MatrixError> {
        if row_ptr.len() != row_ids.len() + 1 {
            return Err(MatrixError::MalformedPointer("row_ptr length must be row_ids + 1"));
        }
        if row_ptr.first() != Some(&0) || *row_ptr.last().unwrap_or(&0) != col_idx.len() {
            return Err(MatrixError::MalformedPointer("row_ptr must span 0..=nnz"));
        }
        if col_idx.len() != vals.len() {
            return Err(MatrixError::DimensionMismatch {
                what: "col_idx vs vals",
                expected: col_idx.len(),
                actual: vals.len(),
            });
        }
        for w in row_ids.windows(2) {
            if w[1] <= w[0] {
                return Err(MatrixError::MalformedPointer("row_ids must be strictly increasing"));
            }
        }
        if let Some(&last) = row_ids.last() {
            if last >= nrows {
                return Err(MatrixError::IndexOutOfBounds {
                    what: "row_ids",
                    index: last,
                    bound: nrows,
                });
            }
        }
        for (k, w) in row_ptr.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(MatrixError::MalformedPointer("row_ptr must be non-decreasing"));
            }
            if w[1] == w[0] {
                // An empty lane contradicts double compression.
                return Err(MatrixError::UnsortedIndices { lane: k });
            }
        }
        for &j in &col_idx {
            if j >= ncols {
                return Err(MatrixError::IndexOutOfBounds {
                    what: "col_idx",
                    index: j,
                    bound: ncols,
                });
            }
        }
        Ok(Dcsr { nrows, ncols, row_ids, row_ptr, col_idx, vals })
    }

    /// Logical number of rows (including empty ones).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of non-empty rows (compressed lanes).
    pub fn n_lanes(&self) -> usize {
        self.row_ids.len()
    }

    /// Original row indices of the compressed lanes.
    pub fn row_ids(&self) -> &[usize] {
        &self.row_ids
    }

    /// Pointer array over compressed lanes.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    pub fn vals(&self) -> &[S] {
        &self.vals
    }

    /// Column indices and values of compressed lane `k` (original row
    /// `row_ids()[k]`).
    pub fn lane(&self, k: usize) -> (usize, &[usize], &[S]) {
        let (lo, hi) = (self.row_ptr[k], self.row_ptr[k + 1]);
        (self.row_ids[k], &self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Ratio of empty rows to total rows — the paper's `emptyratio` selector
    /// parameter.
    pub fn empty_ratio(&self) -> f64 {
        if self.nrows == 0 {
            return 0.0;
        }
        (self.nrows - self.row_ids.len()) as f64 / self.nrows as f64
    }

    /// Expand back to plain CSR (empty rows restored).
    pub fn to_csr(&self) -> Csr<S> {
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for k in 0..self.n_lanes() {
            row_ptr[self.row_ids[k] + 1] = self.row_ptr[k + 1] - self.row_ptr[k];
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr::from_parts_unchecked(
            self.nrows,
            self.ncols,
            row_ptr,
            self.col_idx.clone(),
            self.vals.clone(),
        )
    }

    /// Memory footprint in bytes. For hyper-sparse matrices this is far below
    /// the CSR footprint because the `nrows + 1` pointer array is replaced by
    /// two arrays of length `n_lanes`.
    pub fn bytes(&self) -> usize {
        (self.row_ids.len() + self.row_ptr.len() + self.col_idx.len())
            * std::mem::size_of::<usize>()
            + self.vals.len() * S::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_square() -> Csr<f64> {
        // 6×6 with rows 1 and 4 non-empty.
        Csr::try_new(6, 6, vec![0, 0, 2, 2, 2, 3, 3], vec![0, 3, 5], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn from_csr_drops_empty_rows() {
        let d = sparse_square().to_dcsr();
        assert_eq!(d.n_lanes(), 2);
        assert_eq!(d.row_ids(), &[1, 4]);
        assert_eq!(d.nnz(), 3);
    }

    #[test]
    fn empty_ratio_matches() {
        let d = sparse_square().to_dcsr();
        assert!((d.empty_ratio() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_to_csr() {
        let a = sparse_square();
        assert_eq!(a.to_dcsr().to_csr(), a);
    }

    #[test]
    fn lane_access() {
        let d = sparse_square().to_dcsr();
        let (row, cols, vals) = d.lane(1);
        assert_eq!(row, 4);
        assert_eq!(cols, &[5]);
        assert_eq!(vals, &[3.0]);
    }

    #[test]
    fn dcsr_is_smaller_for_hypersparse() {
        let a = Csr::<f64>::try_new(
            1000,
            1000,
            {
                let mut p = vec![0usize; 1001];
                p[501..].iter_mut().for_each(|x| *x = 1);
                p
            },
            vec![0],
            vec![1.0],
        )
        .unwrap();
        let d = a.to_dcsr();
        assert!(d.bytes() < a.bytes() / 10);
    }

    #[test]
    fn try_new_rejects_empty_lane() {
        let r = Dcsr::<f64>::try_new(4, 4, vec![0, 2], vec![0, 1, 1], vec![0], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn try_new_rejects_unsorted_row_ids() {
        let r = Dcsr::<f64>::try_new(4, 4, vec![2, 1], vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(r.is_err());
    }

    #[test]
    fn zero_rows_matrix() {
        let a = Csr::<f64>::zero(5, 5);
        let d = a.to_dcsr();
        assert_eq!(d.n_lanes(), 0);
        assert_eq!(d.empty_ratio(), 1.0);
        assert_eq!(d.to_csr(), a);
    }
}
