//! Quickstart: build a sparse lower-triangular system, preprocess it once
//! with the recursive block solver, and solve it for a right-hand side.
//!
//! Run with: `cargo run --release --example quickstart`

use recblock::blocked::DepthRule;
use recblock::solver::{RecBlockSolver, SolverOptions};
use recblock_matrix::vector::residual_inf;
use recblock_matrix::{generate, levelset::LevelSets};

fn main() {
    // A 100k-row lower-triangular system with a layered dependency
    // structure (25 level sets), the kind of matrix an incomplete
    // factorisation produces.
    let n = 100_000;
    let l = generate::layered::<f64>(n, 25, 3.0, generate::LayerShape::Uniform, 42);
    println!("matrix: {} rows, {} nonzeros", l.nrows(), l.nnz());

    let levels = LevelSets::analyse(&l).expect("solvable lower-triangular matrix");
    let (mn, avg, mx) = levels.parallelism();
    println!("levels: {} (parallelism min {mn} / avg {avg:.0} / max {mx})", levels.nlevels());

    // Preprocess: recursive level-set reorder, blocked rebuild, adaptive
    // kernel selection. Fixed depth 4 → 16 triangular leaves, 15 squares.
    let opts = SolverOptions { depth: DepthRule::Fixed(4), ..SolverOptions::default() };
    let solver = RecBlockSolver::new(&l, opts).expect("preprocessing succeeds");
    println!(
        "preprocessed in {:.1} ms into {} blocks (depth {})",
        solver.preprocess_time().as_secs_f64() * 1e3,
        solver.blocked().nblocks(),
        solver.blocked().depth(),
    );
    println!("kernel census: {:?}", solver.census());

    // Solve L x = b and verify.
    let b: Vec<f64> = (0..n).map(|i| ((i % 100) as f64) / 100.0 + 0.5).collect();
    let t0 = std::time::Instant::now();
    let x = solver.solve(&b).expect("solve succeeds");
    let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let residual = residual_inf(&l, &x, &b).expect("dimensions match");
    println!("solved in {solve_ms:.2} ms, relative residual {residual:.2e}");
    assert!(residual < 1e-10, "solution verified against L x = b");

    // The preprocessing amortises over repeated solves (the scenario the
    // paper's Table 5 quantifies):
    let t1 = std::time::Instant::now();
    for _ in 0..10 {
        let _ = solver.solve(&b).expect("solve succeeds");
    }
    println!("10 further solves: {:.2} ms total", t1.elapsed().as_secs_f64() * 1e3);
}
