//! The four SpMV kernels of the paper's adaptive selector (Section 3.4).
//!
//! All kernels compute the *update* form `y ← y − A·x`, which is what the
//! block algorithms need: after a triangular segment of `x` is solved, the
//! rectangular/square block multiplies it and subtracts from the pending
//! right-hand side (`b_{si+1} ← SPMV(blk, x_si, b_si)` in Algorithms 4–6).
//!
//! * **scalar-CSR** — one thread per row; best for short, uniform rows.
//! * **vector-CSR** — one warp (here: an unrolled 4-lane accumulator bank
//!   with dynamic row scheduling) per row; best for long rows, where the
//!   scalar kernel would be crippled by load imbalance.
//! * **scalar-DCSR / vector-DCSR** — same pair over [`Dcsr`] storage, which
//!   skips empty rows entirely; best when `emptyratio` is high.
//!
//! The GPU cost model distinguishes the four by their scheduling and
//! coalescing behaviour; on the CPU the pairs differ by scheduling policy
//! and inner-loop shape, and (crucially for correctness tests) all four
//! compute the same result.

use rayon::prelude::*;
use recblock_matrix::{Csr, Dcsr, MatrixError, Scalar};

/// Rows below which the parallel kernels fall back to serial execution.
const PAR_THRESHOLD: usize = 512;

/// Number of interleaved accumulators in the vector kernels (the CPU stand-in
/// for a warp's strided partial sums).
const LANES: usize = 4;

fn check_dims<S: Scalar>(nrows: usize, ncols: usize, x: &[S], y: &[S]) -> Result<(), MatrixError> {
    if x.len() != ncols {
        return Err(MatrixError::DimensionMismatch {
            what: "spmv x",
            expected: ncols,
            actual: x.len(),
        });
    }
    if y.len() != nrows {
        return Err(MatrixError::DimensionMismatch {
            what: "spmv y",
            expected: nrows,
            actual: y.len(),
        });
    }
    Ok(())
}

/// Dot product of one sparse row with `x`, single accumulator (scalar form).
#[inline]
fn row_dot_scalar<S: Scalar>(cols: &[usize], vals: &[S], x: &[S]) -> S {
    let mut acc = S::ZERO;
    for (&j, &v) in cols.iter().zip(vals) {
        acc += v * x[j];
    }
    acc
}

/// Dot product with `LANES` interleaved accumulators (vector form — the fp
/// addition order matches a warp's strided partial sums rather than the
/// serial order).
#[inline]
fn row_dot_vector<S: Scalar>(cols: &[usize], vals: &[S], x: &[S]) -> S {
    let mut acc = [S::ZERO; LANES];
    let chunks = cols.len() / LANES * LANES;
    let mut k = 0;
    while k < chunks {
        for l in 0..LANES {
            acc[l] += vals[k + l] * x[cols[k + l]];
        }
        k += LANES;
    }
    for k in chunks..cols.len() {
        acc[0] += vals[k] * x[cols[k]];
    }
    let mut total = S::ZERO;
    for a in acc {
        total += a;
    }
    total
}

/// scalar-CSR: `y ← y − A·x`, one task per row, static uniform chunks.
pub fn scalar_csr<S: Scalar>(a: &Csr<S>, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    if a.nrows() < PAR_THRESHOLD {
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = a.row(i);
            *yi -= row_dot_scalar(cols, vals, x);
        }
    } else {
        y.par_iter_mut().enumerate().with_min_len(256).for_each(|(i, yi)| {
            let (cols, vals) = a.row(i);
            *yi -= row_dot_scalar(cols, vals, x);
        });
    }
    Ok(())
}

/// vector-CSR: `y ← y − A·x`, one task per row with dynamic scheduling and a
/// multi-lane inner reduction (handles long rows gracefully).
pub fn vector_csr<S: Scalar>(a: &Csr<S>, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    if a.nrows() < PAR_THRESHOLD {
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = a.row(i);
            *yi -= row_dot_vector(cols, vals, x);
        }
    } else {
        // Fine-grained tasks: rayon steals rows dynamically, so a few very
        // long rows do not stall a whole static chunk — the CPU analogue of
        // giving each long row its own warp.
        y.par_iter_mut().enumerate().with_max_len(16).for_each(|(i, yi)| {
            let (cols, vals) = a.row(i);
            *yi -= row_dot_vector(cols, vals, x);
        });
    }
    Ok(())
}

/// scalar-DCSR: `y ← y − A·x` over doubly-compressed storage; empty rows are
/// never visited.
pub fn scalar_dcsr<S: Scalar>(a: &Dcsr<S>, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    let lanes = a.n_lanes();
    if lanes < PAR_THRESHOLD {
        for k in 0..lanes {
            let (row, cols, vals) = a.lane(k);
            y[row] -= row_dot_scalar(cols, vals, x);
        }
    } else {
        let deltas: Vec<(usize, S)> = (0..lanes)
            .into_par_iter()
            .with_min_len(256)
            .map(|k| {
                let (row, cols, vals) = a.lane(k);
                (row, row_dot_scalar(cols, vals, x))
            })
            .collect();
        for (row, d) in deltas {
            y[row] -= d;
        }
    }
    Ok(())
}

/// vector-DCSR: the long-row variant over doubly-compressed storage.
pub fn vector_dcsr<S: Scalar>(a: &Dcsr<S>, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    let lanes = a.n_lanes();
    if lanes < PAR_THRESHOLD {
        for k in 0..lanes {
            let (row, cols, vals) = a.lane(k);
            y[row] -= row_dot_vector(cols, vals, x);
        }
    } else {
        let deltas: Vec<(usize, S)> = (0..lanes)
            .into_par_iter()
            .with_max_len(16)
            .map(|k| {
                let (row, cols, vals) = a.lane(k);
                (row, row_dot_vector(cols, vals, x))
            })
            .collect();
        for (row, d) in deltas {
            y[row] -= d;
        }
    }
    Ok(())
}

/// Plain product `A·x` via the scalar-CSR kernel (convenience for tests and
/// examples).
pub fn apply<S: Scalar>(a: &Csr<S>, x: &[S]) -> Result<Vec<S>, MatrixError> {
    let mut y = vec![S::ZERO; a.nrows()];
    scalar_csr(a, x, &mut y)?;
    // scalar_csr computes y − A·x; negate to get A·x.
    for v in &mut y {
        *v = -*v;
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn fixture(n: usize, empty: f64, skew: f64, seed: u64) -> (Csr<f64>, Vec<f64>, Vec<f64>) {
        let a = generate::rect_random::<f64>(n, n, 5.0, empty, skew, seed);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        (a, x, y)
    }

    fn reference_update(a: &Csr<f64>, x: &[f64], y: &[f64]) -> Vec<f64> {
        let ax = a.spmv_dense(x).unwrap();
        y.iter().zip(&ax).map(|(&yi, &axi)| yi - axi).collect()
    }

    #[test]
    fn all_four_kernels_agree_small() {
        let (a, x, y0) = fixture(100, 0.3, 1.0, 71);
        let expect = reference_update(&a, &x, &y0);
        let d = a.to_dcsr();
        for (name, result) in [
            ("scalar_csr", run_scalar_csr(&a, &x, &y0)),
            ("vector_csr", run_vector_csr(&a, &x, &y0)),
            ("scalar_dcsr", run_scalar_dcsr(&d, &x, &y0)),
            ("vector_dcsr", run_vector_dcsr(&d, &x, &y0)),
        ] {
            assert!(max_rel_diff(&result, &expect) < 1e-12, "{name} disagrees");
        }
    }

    #[test]
    fn all_four_kernels_agree_large_parallel() {
        let (a, x, y0) = fixture(5000, 0.5, 2.0, 72);
        let expect = reference_update(&a, &x, &y0);
        let d = a.to_dcsr();
        for (name, result) in [
            ("scalar_csr", run_scalar_csr(&a, &x, &y0)),
            ("vector_csr", run_vector_csr(&a, &x, &y0)),
            ("scalar_dcsr", run_scalar_dcsr(&d, &x, &y0)),
            ("vector_dcsr", run_vector_dcsr(&d, &x, &y0)),
        ] {
            assert!(max_rel_diff(&result, &expect) < 1e-10, "{name} disagrees");
        }
    }

    fn run_scalar_csr(a: &Csr<f64>, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        scalar_csr(a, x, &mut y).unwrap();
        y
    }

    fn run_vector_csr(a: &Csr<f64>, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        vector_csr(a, x, &mut y).unwrap();
        y
    }

    fn run_scalar_dcsr(a: &Dcsr<f64>, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        scalar_dcsr(a, x, &mut y).unwrap();
        y
    }

    fn run_vector_dcsr(a: &Dcsr<f64>, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        vector_dcsr(a, x, &mut y).unwrap();
        y
    }

    #[test]
    fn rectangular_shapes_supported() {
        let a = generate::rect_random::<f64>(300, 120, 3.0, 0.2, 0.0, 73);
        let x = vec![1.0; 120];
        let mut y = vec![0.0; 300];
        scalar_csr(&a, &x, &mut y).unwrap();
        let expect: Vec<f64> = a.spmv_dense(&x).unwrap().iter().map(|v| -v).collect();
        assert!(max_rel_diff(&y, &expect) < 1e-12);
    }

    #[test]
    fn dimension_checks() {
        let a = Csr::<f64>::identity(3);
        let mut y = vec![0.0; 3];
        assert!(scalar_csr(&a, &[1.0], &mut y).is_err());
        assert!(vector_csr(&a, &[1.0; 3], &mut [0.0; 2]).is_err());
        let d = a.to_dcsr();
        assert!(scalar_dcsr(&d, &[1.0; 2], &mut y).is_err());
        assert!(vector_dcsr(&d, &[1.0; 3], &mut [0.0; 4]).is_err());
    }

    #[test]
    fn apply_computes_product() {
        let a = Csr::<f64>::identity(4);
        assert_eq!(apply(&a, &[1.0, 2.0, 3.0, 4.0]).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_matrix_is_noop() {
        let a = Csr::<f64>::zero(4, 4);
        let mut y = vec![1.0; 4];
        scalar_csr(&a, &[2.0; 4], &mut y).unwrap();
        assert_eq!(y, vec![1.0; 4]);
    }

    #[test]
    fn update_form_accumulates() {
        // Two successive updates subtract twice.
        let a = Csr::<f64>::identity(2);
        let mut y = vec![10.0, 10.0];
        scalar_csr(&a, &[1.0, 2.0], &mut y).unwrap();
        scalar_csr(&a, &[1.0, 2.0], &mut y).unwrap();
        assert_eq!(y, vec![8.0, 6.0]);
    }

    #[test]
    fn f32_kernels_work() {
        let a = generate::rect_random::<f32>(200, 200, 4.0, 0.4, 0.0, 74);
        let x = vec![0.5f32; 200];
        let mut y1 = vec![1.0f32; 200];
        let mut y2 = vec![1.0f32; 200];
        scalar_csr(&a, &x, &mut y1).unwrap();
        vector_dcsr(&a.to_dcsr(), &x, &mut y2).unwrap();
        assert!(max_rel_diff(&y1, &y2) < 1e-5);
    }
}
