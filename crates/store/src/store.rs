//! Directory-backed plan store with atomic writes.
//!
//! One plan per file, named after the [`PlanKey`] so lookups are a single
//! `fs::read` with no index to maintain or corrupt. Writes go through a
//! uniquely named temp file in the same directory, `sync_all`, then
//! `rename` — readers never observe a half-written plan, and two processes
//! racing to persist the same key both leave a complete file behind.

use crate::error::StoreError;
use crate::key::PlanKey;
use crate::plan::{
    decode_meta, decode_packed, decode_plan, encode_packed, encode_plan, verify_file, ArtifactKind,
    PlanMeta,
};
use recblock::packed::PackedBlocked;
use recblock::{BlockedTri, RecBlockSolver};
use recblock_faults::{aux, fires, FaultPoint};
use recblock_kernels::trace::{EventKind, SolveTrace};
use recblock_matrix::Scalar;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

/// Wall-clock spent in each phase of a plan load, so callers (and the
/// serve layer's stage histograms) can tell I/O-bound loads apart from
/// decode-bound ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadTimings {
    /// Reading the raw bytes from disk.
    pub read: Duration,
    /// Decoding those bytes into the in-memory plan.
    pub decode: Duration,
}

/// A plan read back from disk.
#[derive(Debug, Clone)]
pub struct LoadedPlan<S> {
    /// The file's META section.
    pub meta: PlanMeta,
    /// The reconstructed plan.
    pub blocked: BlockedTri<S>,
    /// On-disk size of the file, in bytes.
    pub bytes: usize,
    /// How long the read and decode phases took.
    pub timings: LoadTimings,
}

impl<S: Scalar> LoadedPlan<S> {
    /// Wrap the plan as a [`RecBlockSolver`], carrying the original build
    /// cost so `preprocess_time()` still reports what a cold build costs.
    pub fn into_solver(self) -> RecBlockSolver<S> {
        let prep = Duration::from_secs_f64(self.meta.build_cost.max(0.0));
        RecBlockSolver::from_blocked(self.blocked, prep)
    }
}

/// One plan file found by a directory scan.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Full path of the file.
    pub path: PathBuf,
    /// Its META section.
    pub meta: PlanMeta,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-modified time (used to warm newest-first).
    pub modified: SystemTime,
}

/// A directory of persisted plans.
#[derive(Debug, Clone)]
pub struct PlanStore {
    dir: PathBuf,
}

/// Distinguishes concurrent writers within one process; combined with the
/// pid to distinguish processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl PlanStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(PlanStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical file name for `key`: readable, unique per key, stable
    /// across processes.
    pub fn file_name(key: &PlanKey, kind: ArtifactKind) -> String {
        format!(
            "{}x{}-{}nnz-{:016x}-{:016x}.{}",
            key.structure.nrows,
            key.structure.ncols,
            key.structure.nnz,
            key.structure.hash,
            key.values,
            kind.extension()
        )
    }

    /// Where the plan for `key` lives (whether or not it exists yet).
    pub fn path_for(&self, key: &PlanKey, kind: ArtifactKind) -> PathBuf {
        self.dir.join(Self::file_name(key, kind))
    }

    /// Persist a built plan. Returns the final path.
    pub fn save<S: Scalar>(
        &self,
        blocked: &BlockedTri<S>,
        key: &PlanKey,
        build_cost: f64,
    ) -> Result<PathBuf, StoreError> {
        let path = self.path_for(key, ArtifactKind::Blocked);
        write_atomic(&path, &encode_plan(blocked, key, build_cost))?;
        Ok(path)
    }

    /// Persist a packed arena. Returns the final path.
    pub fn save_packed<S: Scalar>(
        &self,
        packed: &PackedBlocked<S>,
        key: &PlanKey,
        build_cost: f64,
    ) -> Result<PathBuf, StoreError> {
        let path = self.path_for(key, ArtifactKind::Packed);
        write_atomic(&path, &encode_packed(packed, key, build_cost))?;
        Ok(path)
    }

    /// Load the plan for `key`. `Ok(None)` when no file exists for the key
    /// — the one non-error "miss" outcome. Any present-but-unusable file is
    /// a typed error so callers can report *why* before rebuilding.
    pub fn load<S: Scalar>(&self, key: &PlanKey) -> Result<Option<LoadedPlan<S>>, StoreError> {
        let path = self.path_for(key, ArtifactKind::Blocked);
        match fs::metadata(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
            Ok(_) => {}
        }
        let loaded = read_plan_file(&path)?;
        if loaded.meta.key != *key {
            return Err(StoreError::FingerprintMismatch { expected: *key, found: loaded.meta.key });
        }
        Ok(Some(loaded))
    }

    /// Raw, verified `.rbplan` bytes for `key`, ready to ship to another
    /// node verbatim — the embedded META/BODY checksums travel with the
    /// bytes, so the receiver re-verifies without trusting the transport.
    /// `Ok(None)` when no file exists; a present-but-corrupt file is a
    /// typed error (never exported).
    pub fn export_bytes(&self, key: &PlanKey) -> Result<Option<Vec<u8>>, StoreError> {
        let path = self.path_for(key, ArtifactKind::Blocked);
        let bytes = match fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
            Ok(b) => b,
        };
        let meta = verify_file(&bytes)?;
        if meta.key != *key {
            return Err(StoreError::FingerprintMismatch { expected: *key, found: meta.key });
        }
        Ok(Some(bytes))
    }

    /// Accept `.rbplan` bytes produced elsewhere (a peer's
    /// [`PlanStore::export_bytes`]) and persist them for `key`. The bytes
    /// are verified end to end — magic, version, both checksums — and the
    /// embedded key must match `key` before anything touches disk, so a
    /// corrupted or misrouted push can never poison the store.
    pub fn import_bytes(&self, key: &PlanKey, bytes: &[u8]) -> Result<PlanMeta, StoreError> {
        let meta = verify_file(bytes)?;
        if meta.key != *key {
            return Err(StoreError::FingerprintMismatch { expected: *key, found: meta.key });
        }
        if meta.kind != ArtifactKind::Blocked {
            return Err(StoreError::Malformed("imported plan is not a blocked artifact".into()));
        }
        write_atomic(&self.path_for(key, ArtifactKind::Blocked), bytes)?;
        Ok(meta)
    }

    /// Remove the plan for `key` if present. Returns whether a file was
    /// deleted.
    pub fn remove(&self, key: &PlanKey) -> Result<bool, StoreError> {
        match fs::remove_file(self.path_for(key, ArtifactKind::Blocked)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Scan the directory for plan files, newest first. Files that fail to
    /// parse are skipped (a corrupt file must not prevent warming the rest);
    /// only the META section is read, so scanning stays cheap even for
    /// large plans.
    pub fn entries(&self) -> Result<Vec<StoreEntry>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let is_plan = path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e == "rbplan" || e == "rbpack");
            if !is_plan {
                continue;
            }
            let Ok(fmeta) = entry.metadata() else { continue };
            let Ok(meta) = inspect_plan_file(&path) else { continue };
            out.push(StoreEntry {
                path,
                meta,
                bytes: fmeta.len(),
                modified: fmeta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        out.sort_by_key(|e| std::cmp::Reverse(e.modified));
        Ok(out)
    }

    /// Where this store quarantines corrupt files.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// Boot-time recovery scan: verify every plan file end to end
    /// (magic, version, META and BODY checksums — scalar-independent, no
    /// decode) and move the ones that fail into `quarantine/`, where
    /// they stop poisoning warm-start and lookups; the next request for
    /// a quarantined key simply misses and rebuilds. Stray temp files —
    /// writers that died before their rename — are deleted.
    ///
    /// The scan reads every byte of every plan, so it costs one pass of
    /// sequential I/O over the store; run it at process boot, not per
    /// request.
    pub fn recover(&self) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport::default();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') && name.contains(".tmp-") {
                if fs::remove_file(&path).is_ok() {
                    report.stale_tmp_removed += 1;
                }
                continue;
            }
            let is_plan = path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e == "rbplan" || e == "rbpack");
            if !is_plan {
                continue;
            }
            report.scanned += 1;
            let verdict =
                fs::read(&path).map_err(StoreError::from).and_then(|b| verify_file(&b).map(|_| ()));
            if let Err(why) = verdict {
                let qdir = self.quarantine_dir();
                fs::create_dir_all(&qdir)?;
                let dest = qdir.join(entry.file_name());
                // A rename can only fail across filesystems (quarantine/
                // is a subdirectory, so it won't); if it somehow does,
                // deleting still unpoisons the store.
                if fs::rename(&path, &dest).is_err() {
                    let _ = fs::remove_file(&path);
                }
                report.quarantined.push((dest, why));
            }
        }
        Ok(report)
    }
}

/// Subdirectory of a store that corrupt files are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// What a [`PlanStore::recover`] scan found and did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Plan files examined.
    pub scanned: usize,
    /// Corrupt files moved to `quarantine/`, with the error that
    /// condemned each.
    pub quarantined: Vec<(PathBuf, StoreError)>,
    /// Leftover temp files (dead writers) deleted.
    pub stale_tmp_removed: usize,
}

/// Syncs performed by [`write_atomic`]: `(file syncs, directory syncs)`.
/// Exposed so tests can assert the crash-durability path is exercised.
static FSYNC_FILES: AtomicU64 = AtomicU64::new(0);
static FSYNC_DIRS: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(temp-file syncs, parent-directory syncs)` counters of
/// the atomic write path.
pub fn sync_stats() -> (u64, u64) {
    (FSYNC_FILES.load(Ordering::Relaxed), FSYNC_DIRS.load(Ordering::Relaxed))
}

/// Write `bytes` to `path` atomically **and durably**: unique temp file
/// in the same directory, flush + `sync_all` so the data hits disk
/// before the rename can publish it, `rename` over the target, then
/// `sync_all` on the parent directory so the rename itself (a directory
/// mutation) survives a crash. Readers never observe a half-written
/// plan, and a plan that is visible after a power loss is complete.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().ok_or_else(|| {
        StoreError::Io(format!("plan path {} has no parent directory", path.display()))
    })?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("plan"),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let result = (|| -> Result<(), StoreError> {
        let mut f = fs::File::create(&tmp)?;
        if fires(FaultPoint::StoreWrite) {
            // Injected torn write: only a prefix reaches the file and no
            // sync runs, then the rename publishes it anyway — the
            // observable outcome of a crash (or lying disk) mid-persist.
            // The recovery scan must quarantine what this leaves behind.
            let keep = aux(FaultPoint::StoreWrite) as usize % bytes.len().max(1);
            f.write_all(&bytes[..keep])?;
            drop(f);
            fs::rename(&tmp, path)?;
            return Ok(());
        }
        f.write_all(bytes)?;
        f.sync_all()?;
        FSYNC_FILES.fetch_add(1, Ordering::Relaxed);
        fs::rename(&tmp, path)?;
        let d = fs::File::open(dir)?;
        d.sync_all()?;
        FSYNC_DIRS.fetch_add(1, Ordering::Relaxed);
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Read and fully decode a plan file, timing the two phases separately.
pub fn read_plan_file<S: Scalar>(path: &Path) -> Result<LoadedPlan<S>, StoreError> {
    let tr = SolveTrace::start();
    let t0 = Instant::now();
    if fires(FaultPoint::StoreRead) {
        return Err(StoreError::Io(format!("injected fault: store_read ({})", path.display())));
    }
    let mut bytes = fs::read(path)?;
    if !bytes.is_empty() && fires(FaultPoint::StoreDecode) {
        // Injected single-bit flip between read and decode: the CRC (or
        // an earlier structural check) must turn this into a typed error.
        let a = aux(FaultPoint::StoreDecode);
        let pos = a as usize % bytes.len();
        bytes[pos] ^= 1 << ((a >> 32) % 8);
    }
    let bytes = bytes;
    let read = t0.elapsed();
    SolveTrace::finish(tr, EventKind::StoreRead, 0, bytes.len().min(u32::MAX as usize) as u32, 0);
    let td = SolveTrace::start();
    let t1 = Instant::now();
    let (meta, blocked) = decode_plan(&bytes)?;
    let decode = t1.elapsed();
    SolveTrace::finish(
        td,
        EventKind::StoreDecode,
        0,
        meta.key.structure.nrows.min(u32::MAX as usize) as u32,
        0,
    );
    Ok(LoadedPlan { meta, blocked, bytes: bytes.len(), timings: LoadTimings { read, decode } })
}

/// Read and fully decode a packed-arena file.
pub fn read_pack_file<S: Scalar>(path: &Path) -> Result<(PlanMeta, PackedBlocked<S>), StoreError> {
    let bytes = fs::read(path)?;
    decode_packed(&bytes)
}

/// Read only the META section of a plan file (either artifact kind).
pub fn inspect_plan_file(path: &Path) -> Result<PlanMeta, StoreError> {
    // META sits within the first few hundred bytes; reading the whole file
    // just to inspect it would defeat the cheap-scan goal for large plans.
    use std::io::Read as _;
    let mut f = fs::File::open(path)?;
    let mut head = vec![0u8; 4096];
    let mut filled = 0;
    while filled < head.len() {
        let got = f.read(&mut head[filled..])?;
        if got == 0 {
            break;
        }
        filled += got;
    }
    head.truncate(filled);
    decode_meta(&head)
}
