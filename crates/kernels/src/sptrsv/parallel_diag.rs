//! The "completely parallel" SpTRSV kernel.
//!
//! Section 3.4 of the paper, sparsity structure (1): after recursive
//! level-set reordering, many small triangular blocks contain *only* a
//! diagonal, so every component solves independently with perfect
//! parallelism (`SPTRSV-COMPLETELYPARALLEL` in Algorithm 7).

use rayon::prelude::*;
use recblock_matrix::{Csr, MatrixError, Scalar};

/// `true` if the matrix stores exactly its diagonal (one entry per row at
/// `(i, i)`).
pub fn is_diagonal_only<S: Scalar>(l: &Csr<S>) -> bool {
    l.nrows() == l.ncols()
        && l.nnz() == l.nrows()
        && (0..l.nrows()).all(|i| {
            let (cols, _) = l.row(i);
            cols == [i]
        })
}

/// Solve a purely diagonal system: `x[i] = b[i] / d[i]` in one parallel map.
pub fn parallel_diag<S: Scalar>(l: &Csr<S>, b: &[S]) -> Result<Vec<S>, MatrixError> {
    let n = l.nrows();
    if b.len() != n {
        return Err(MatrixError::DimensionMismatch {
            what: "sptrsv rhs",
            expected: n,
            actual: b.len(),
        });
    }
    if !is_diagonal_only(l) {
        return Err(MatrixError::NotTriangular { row: 0, col: 0 });
    }
    let vals = l.vals();
    Ok(b.par_iter().zip(vals.par_iter()).map(|(&bi, &di)| bi / di).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;

    #[test]
    fn detects_diagonal_matrix() {
        assert!(is_diagonal_only(&Csr::<f64>::identity(5)));
        assert!(is_diagonal_only(&generate::diagonal::<f64>(100, 1)));
        assert!(!is_diagonal_only(&generate::chain::<f64>(10, 1)));
        assert!(!is_diagonal_only(&Csr::<f64>::zero(3, 3)));
    }

    #[test]
    fn solves_diagonal_system() {
        let l =
            Csr::<f64>::try_new(3, 3, vec![0, 1, 2, 3], vec![0, 1, 2], vec![2., 4., 8.]).unwrap();
        let x = parallel_diag(&l, &[2.0, 8.0, 32.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn matches_serial_reference() {
        let l = generate::diagonal::<f64>(10_000, 7);
        let b: Vec<f64> = (0..10_000).map(|i| (i as f64).cos()).collect();
        let x1 = parallel_diag(&l, &b).unwrap();
        let x2 = super::super::serial_csr(&l, &b).unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn rejects_non_diagonal() {
        let l = generate::chain::<f64>(5, 1);
        assert!(parallel_diag(&l, &[1.0; 5]).is_err());
    }

    #[test]
    fn rejects_wrong_rhs() {
        let l = Csr::<f64>::identity(3);
        assert!(parallel_diag(&l, &[1.0]).is_err());
    }
}
