//! Simulated ablation report: what each ingredient of the improved
//! recursive block algorithm buys (complements `cargo bench ablations`).
use recblock_bench::HarnessConfig;
fn main() {
    print!("{}", recblock_bench::experiments::ablation::run(&HarnessConfig::default()));
}
