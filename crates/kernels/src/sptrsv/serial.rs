//! Serial reference SpTRSV (the paper's Algorithm 1, plus a CSC variant).
//!
//! Every parallel solver in the suite is validated against these. The CSR
//! reference accumulates each row through [`crate::exec::row_dot`] — the
//! same deterministic lane-unrolled reduction the parallel kernels use — so
//! "matches the serial reference" means *bit-identical*, not merely close.

use crate::exec::row_dot;
use recblock_matrix::{Csc, Csr, MatrixError, Scalar};

/// Solve `L x = b` serially with `L` in CSR (forward substitution; the
/// paper's Algorithm 1, with `left_sum` folded into the accumulation loop).
///
/// Requires `L` square, lower triangular, diagonal stored last in each row
/// and nonzero ([`Csr::is_solvable_lower`]).
pub fn serial_csr<S: Scalar>(l: &Csr<S>, b: &[S]) -> Result<Vec<S>, MatrixError> {
    let n = l.nrows();
    if b.len() != n {
        return Err(MatrixError::DimensionMismatch {
            what: "sptrsv rhs",
            expected: n,
            actual: b.len(),
        });
    }
    let mut x = vec![S::ZERO; n];
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let last = match cols.len() {
            0 => return Err(MatrixError::SingularDiagonal { row: i }),
            m => m - 1,
        };
        if cols[last] != i {
            return Err(MatrixError::NotTriangular { row: i, col: cols[last] });
        }
        let left_sum = row_dot(&cols[..last], &vals[..last], &x);
        x[i] = (b[i] - left_sum) / vals[last];
    }
    Ok(x)
}

/// Solve `L x = b` serially with `L` in CSC (column-sweep forward
/// substitution: once `x[j]` is known, its column updates all later rows).
///
/// Requires the diagonal stored first in each column and nonzero
/// ([`Csc::is_solvable_lower`]).
pub fn serial_csc<S: Scalar>(l: &Csc<S>, b: &[S]) -> Result<Vec<S>, MatrixError> {
    let n = l.ncols();
    if b.len() != n {
        return Err(MatrixError::DimensionMismatch {
            what: "sptrsv rhs",
            expected: n,
            actual: b.len(),
        });
    }
    let mut x: Vec<S> = b.to_vec();
    for j in 0..n {
        let (rows, vals) = l.col(j);
        if rows.first() != Some(&j) {
            return Err(MatrixError::SingularDiagonal { row: j });
        }
        let xj = x[j] / vals[0];
        x[j] = xj;
        for k in 1..rows.len() {
            let i = rows[k];
            let upd = vals[k] * xj;
            x[i] -= upd;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;
    use recblock_matrix::vector::residual_inf;

    #[test]
    fn identity_solve() {
        let l = Csr::<f64>::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(serial_csr(&l, &b).unwrap(), b);
    }

    #[test]
    fn hand_computed_2x2() {
        // [2 0; 1 4] x = [2, 9]  =>  x = [1, 2]
        let l = Csr::<f64>::try_new(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![2., 1., 4.]).unwrap();
        let x = serial_csr(&l, &[2.0, 9.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn csr_and_csc_agree() {
        let l = generate::random_lower::<f64>(500, 4.0, 21);
        let b: Vec<f64> = (0..500).map(|i| (i % 7) as f64 - 3.0).collect();
        let x1 = serial_csr(&l, &b).unwrap();
        let csc = l.to_csc();
        let x2 = serial_csc(&csc, &b).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn residual_is_tiny() {
        let l = generate::grid2d::<f64>(20, 20, 5);
        let b: Vec<f64> = (0..400).map(|i| (i as f64).sin()).collect();
        let x = serial_csr(&l, &b).unwrap();
        assert!(residual_inf(&l, &x, &b).unwrap() < 1e-12);
    }

    #[test]
    fn rejects_wrong_rhs_len() {
        let l = Csr::<f64>::identity(3);
        assert!(serial_csr(&l, &[1.0]).is_err());
    }

    #[test]
    fn rejects_missing_diagonal() {
        let l = Csr::<f64>::try_new(2, 2, vec![0, 1, 2], vec![0, 0], vec![1., 1.]).unwrap();
        assert!(serial_csr(&l, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn f32_solve_works() {
        let l = generate::banded::<f32>(100, 3, 0.7, 9);
        let b = vec![1.0f32; 100];
        let x = serial_csr(&l, &b).unwrap();
        assert!(residual_inf(&l, &x, &b).unwrap() < 1e-5);
    }
}
