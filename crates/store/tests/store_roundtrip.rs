//! End-to-end store behaviour: round-trips, typed rejection of every
//! unusable-file class, and directory scanning.

use recblock::packed::{PackedBlocked, PackedOptions};
use recblock::{BlockedOptions, BlockedTri, DepthRule};
use recblock_matrix::{generate, Scalar};
use recblock_store::{
    inspect_plan_file, read_pack_file, read_plan_file, ArtifactKind, PlanKey, PlanStore,
    StoreError, FORMAT_VERSION,
};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rbstore-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn build<S: Scalar>(l: &recblock_matrix::Csr<S>) -> BlockedTri<S> {
    BlockedTri::build(l, &BlockedOptions { depth: DepthRule::Fixed(3), ..Default::default() })
        .unwrap()
}

#[test]
fn save_load_solves_bit_identically_f64() {
    let tmp = TempDir::new("roundtrip-f64");
    let l = generate::kkt_like::<f64>(1200, 400, 3, 11);
    let plan = build(&l);
    let key = PlanKey::of(&l);

    let store = PlanStore::open(&tmp.0).unwrap();
    let path = store.save(&plan, &key, 0.25).unwrap();
    assert!(path.exists());

    let loaded = store.load::<f64>(&key).unwrap().expect("saved plan should load");
    assert_eq!(loaded.meta.key, key);
    assert_eq!(loaded.meta.n, plan.n());
    assert_eq!(loaded.meta.nnz, plan.nnz());
    assert_eq!(loaded.meta.depth, plan.depth());
    assert_eq!(loaded.meta.nblocks, plan.nblocks());
    assert_eq!(loaded.meta.build_cost, 0.25);
    assert_eq!(loaded.blocked.census(), plan.census());

    let b: Vec<f64> = (0..1200).map(|i| ((i % 23) as f64) - 11.0).collect();
    // Bit-identical, not merely close: the loaded plan runs the same
    // kernels over the same arrays in the same order.
    assert_eq!(loaded.blocked.solve(&b).unwrap(), plan.solve(&b).unwrap());

    let solver = loaded.into_solver();
    assert_eq!(solver.preprocess_time().as_secs_f64(), 0.25);
}

#[test]
fn save_load_solves_bit_identically_f32() {
    let tmp = TempDir::new("roundtrip-f32");
    let l = generate::random_lower::<f32>(800, 4.0, 12);
    let plan = build(&l);
    let key = PlanKey::of(&l);

    let store = PlanStore::open(&tmp.0).unwrap();
    store.save(&plan, &key, 0.1).unwrap();
    let loaded = store.load::<f32>(&key).unwrap().unwrap();

    let b: Vec<f32> = (0..800).map(|i| ((i % 7) as f32) - 3.0).collect();
    assert_eq!(loaded.blocked.solve(&b).unwrap(), plan.solve(&b).unwrap());
}

#[test]
fn missing_key_is_a_clean_miss() {
    let tmp = TempDir::new("miss");
    let store = PlanStore::open(&tmp.0).unwrap();
    let l = generate::chain::<f64>(50, 13);
    assert!(store.load::<f64>(&PlanKey::of(&l)).unwrap().is_none());
}

#[test]
fn wrong_scalar_type_is_typed() {
    let tmp = TempDir::new("scalar");
    let l = generate::random_lower::<f64>(300, 3.0, 14);
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    let path = store.save(&build(&l), &key, 0.0).unwrap();
    match read_plan_file::<f32>(&path) {
        Err(StoreError::ScalarMismatch { expected: 4, found: 8 }) => {}
        other => panic!("expected ScalarMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_version_is_typed() {
    let tmp = TempDir::new("version");
    let l = generate::random_lower::<f64>(300, 3.0, 15);
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    let path = store.save(&build(&l), &key, 0.0).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    match store.load::<f64>(&key) {
        Err(StoreError::WrongVersion { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected WrongVersion, got {other:?}"),
    }
}

#[test]
fn v2_plan_files_still_load_with_default_schedule_fields() {
    // Synthesize a v2 file from a v3 one: stamp the old version and strip
    // the three scheduling-mode tune fields (u8 + 2 x u64) that v3 appended
    // after the four original tune words, then re-frame the body. A v2 file
    // must load cleanly, defaulting the new fields, and solve bit-identically.
    let tmp = TempDir::new("v2-compat");
    let l = generate::kkt_like::<f64>(900, 300, 3, 17);
    let plan = build(&l);
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    let path = store.save(&plan, &key, 0.0).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
    // Layout: magic(8) version(4) | meta: tag(4) len(8) crc(4) payload |
    // body: tag(4) len(8) crc(4) payload.
    let meta_len = u64_at(16);
    let body_hdr = 12 + 16 + meta_len;
    let body_len = u64_at(body_hdr + 4);
    let body = &bytes[body_hdr + 16..body_hdr + 16 + body_len];
    // Body: perm slice (len + n words), then the tune block.
    let nperm = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
    let cut = 8 + nperm * 8 + 4 * 8;
    let mut v2_body = Vec::with_capacity(body_len - 17);
    v2_body.extend_from_slice(&body[..cut]);
    v2_body.extend_from_slice(&body[cut + 17..]);

    let mut v2 = Vec::new();
    v2.extend_from_slice(&bytes[..8]);
    v2.extend_from_slice(&2u32.to_le_bytes());
    v2.extend_from_slice(&bytes[12..body_hdr + 4]);
    v2.extend_from_slice(&(v2_body.len() as u64).to_le_bytes());
    v2.extend_from_slice(&recblock_store::crc::crc32(&v2_body).to_le_bytes());
    v2.extend_from_slice(&v2_body);
    std::fs::write(&path, &v2).unwrap();

    let loaded = store.load::<f64>(&key).unwrap().expect("v2 file should load");
    let defaults = recblock_kernels::TuneParams::default();
    assert_eq!(loaded.blocked.tune().schedule_mode, defaults.schedule_mode);
    assert_eq!(loaded.blocked.tune().p2p_min_parallel, defaults.p2p_min_parallel);
    assert_eq!(loaded.blocked.tune().p2p_chunk_nnz, defaults.p2p_chunk_nnz);
    let b: Vec<f64> = (0..900).map(|i| ((i % 13) as f64) - 6.0).collect();
    assert_eq!(loaded.blocked.solve(&b).unwrap(), plan.solve(&b).unwrap());
}

#[test]
fn wrong_magic_is_typed() {
    let tmp = TempDir::new("magic");
    let l = generate::random_lower::<f64>(200, 3.0, 16);
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    let path = store.save(&build(&l), &key, 0.0).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(store.load::<f64>(&key).unwrap_err(), StoreError::WrongMagic);
}

#[test]
fn corrupted_body_is_a_checksum_mismatch() {
    let tmp = TempDir::new("corrupt");
    let l = generate::random_lower::<f64>(400, 4.0, 17);
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    let path = store.save(&build(&l), &key, 0.0).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    match store.load::<f64>(&key) {
        Err(StoreError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn truncation_battery_never_panics() {
    let tmp = TempDir::new("truncate");
    let l = generate::kkt_like::<f64>(600, 200, 3, 18);
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    let path = store.save(&build(&l), &key, 0.0).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Chop the file at a spread of lengths covering the magic, version,
    // meta section and body; every prefix must fail with a typed error.
    let cuts: Vec<usize> =
        [0, 1, 4, 7, 8, 9, 11, 12, 20, 40, 60, 90, 120, bytes.len() / 2, bytes.len() - 1]
            .into_iter()
            .filter(|&c| c < bytes.len())
            .collect();
    for cut in cuts {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = store.load::<f64>(&key).expect_err("truncated file must not load");
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::WrongMagic
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Malformed(_)
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn plan_for_another_matrix_is_a_fingerprint_mismatch() {
    let tmp = TempDir::new("fingerprint");
    let a = generate::random_lower::<f64>(300, 3.0, 19);
    let b = generate::random_lower::<f64>(300, 3.0, 20);
    let (ka, kb) = (PlanKey::of(&a), PlanKey::of(&b));
    let store = PlanStore::open(&tmp.0).unwrap();
    let path_a = store.save(&build(&a), &ka, 0.0).unwrap();
    // Simulate a mis-filed plan: b's slot holds a's bytes.
    std::fs::copy(&path_a, store.path_for(&kb, ArtifactKind::Blocked)).unwrap();

    match store.load::<f64>(&kb) {
        Err(StoreError::FingerprintMismatch { expected, found }) => {
            assert_eq!(expected, kb);
            assert_eq!(found, ka);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
}

#[test]
fn packed_arena_roundtrips() {
    let tmp = TempDir::new("packed");
    let l = generate::hub_power_law::<f64>(900, 4, 1, 0, 21);
    let packed =
        PackedBlocked::build(&l, &PackedOptions { depth: 3, ..Default::default() }).unwrap();
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    let path = store.save_packed(&packed, &key, 0.05).unwrap();

    let (meta, loaded) = read_pack_file::<f64>(&path).unwrap();
    assert_eq!(meta.kind, ArtifactKind::Packed);
    assert_eq!(meta.key, key);
    let b: Vec<f64> = (0..900).map(|i| ((i % 19) as f64) - 9.0).collect();
    assert_eq!(loaded.solve(&b).unwrap(), packed.solve(&b).unwrap());

    // A packed file is not a blocked plan.
    assert!(matches!(read_plan_file::<f64>(&path), Err(StoreError::Malformed(_))));
}

#[test]
fn entries_scans_newest_first_and_skips_corrupt() {
    let tmp = TempDir::new("entries");
    let store = PlanStore::open(&tmp.0).unwrap();
    let mats: Vec<_> =
        (0..3).map(|s| generate::random_lower::<f64>(200 + 50 * s, 3.0, 30 + s as u64)).collect();
    for l in &mats {
        store.save(&build(l), &PlanKey::of(l), 0.0).unwrap();
    }
    // A corrupt straggler in the directory must be skipped, not fatal.
    std::fs::write(tmp.0.join("junk.rbplan"), b"not a plan").unwrap();
    // Non-plan files are ignored entirely.
    std::fs::write(tmp.0.join("README.txt"), b"hello").unwrap();

    let entries = store.entries().unwrap();
    assert_eq!(entries.len(), 3);
    for w in entries.windows(2) {
        assert!(w[0].modified >= w[1].modified, "entries not newest-first");
    }
    for e in &entries {
        assert_eq!(inspect_plan_file(&e.path).unwrap(), e.meta);
    }
}

#[test]
fn save_overwrites_atomically() {
    let tmp = TempDir::new("overwrite");
    let l = generate::random_lower::<f64>(250, 3.0, 40);
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    store.save(&build(&l), &key, 1.0).unwrap();
    store.save(&build(&l), &key, 2.0).unwrap();
    let loaded = store.load::<f64>(&key).unwrap().unwrap();
    assert_eq!(loaded.meta.build_cost, 2.0);
    // No temp files left behind.
    let stray: Vec<_> = std::fs::read_dir(&tmp.0)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
        .collect();
    assert!(stray.is_empty(), "leftover temp files: {stray:?}");
}

#[test]
fn load_reports_phase_timings_and_trace_events() {
    use recblock_kernels::trace::{EventKind, SolveTrace};
    let tmp = TempDir::new("timings");
    let l = generate::random_lower::<f64>(500, 4.0, 21);
    let key = PlanKey::of(&l);
    let store = PlanStore::open(&tmp.0).unwrap();
    store.save(&build(&l), &key, 0.1).unwrap();

    SolveTrace::enable();
    let loaded = store.load::<f64>(&key).unwrap().unwrap();
    let events = SolveTrace::drain();
    SolveTrace::disable();

    // Phase timings are populated (reads of a just-written small file can be
    // sub-microsecond, so assert on the sum rather than each phase).
    let t = loaded.timings;
    assert!(t.read + t.decode > std::time::Duration::ZERO, "timings: {t:?}");
    // The trace saw both phases of the load. Match on the payload (other
    // tests in this binary may also record loads while the trace is on).
    assert!(
        events.iter().any(|e| e.kind == EventKind::StoreRead && e.rows as usize == loaded.bytes),
        "store_read event carrying the byte count: {events:?}"
    );
    assert!(
        events.iter().any(|e| e.kind == EventKind::StoreDecode && e.rows as usize == loaded.meta.n),
        "store_decode event carrying the row count: {events:?}"
    );
}
