//! Synchronisation-free parallel SpTRSV (the paper's Algorithm 3, after Liu
//! et al., Euro-Par '16).
//!
//! The matrix is held in CSC with the diagonal first in each column. A light
//! preprocessing pass counts each component's in-degree (its row length,
//! diagonal included). In the solve phase every component busy-waits until
//! its in-degree has dropped to 1 (only the diagonal left), computes
//! `x[i] = (b[i] − left_sum[i]) / d[i]`, then walks its column and notifies
//! every dependent row with an atomic `left_sum` addition and an atomic
//! in-degree decrement. One "kernel launch", no barriers.
//!
//! ## CPU port and deadlock freedom
//!
//! On the GPU each component is a warp and the hardware scheduler guarantees
//! (on Pascal+) that runnable warps make progress. On the CPU we have `P ≪ n`
//! threads, so the assignment of components to threads matters: we use
//! **static cyclic assignment processed in ascending order** — thread `t`
//! handles components `t, t+P, t+2P, …` in that order. This is deadlock-free:
//! consider the smallest unsolved component `i`. All of its dependencies are
//! solved (they are smaller than `i`), and the thread owning `i` has already
//! finished every smaller component it owns, so it is either at `i` or
//! busy-waiting at `i` — and its wait condition is already satisfied. Hence
//! `i` completes, and by induction the whole solve completes.

use recblock_matrix::scalar::ScalarAtomic;
use recblock_matrix::{Csc, Csr, MatrixError, Scalar};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A sync-free triangular solver. Preprocessing (CSC conversion + in-degree
/// base counts) happens once in [`SyncFreeSolver::new`]; `solve` may then be
/// called repeatedly.
#[derive(Debug, Clone)]
pub struct SyncFreeSolver<S> {
    csc: Csc<S>,
    /// In-degree of every component (row length incl. diagonal), precomputed.
    in_degree_base: Vec<usize>,
    /// Number of worker threads used by `solve`.
    nthreads: usize,
}

impl<S: Scalar> SyncFreeSolver<S> {
    /// Preprocess a lower-triangular CSR matrix (converted to CSC internally,
    /// as in the paper) using all available CPU parallelism for the solve.
    pub fn new(l: &Csr<S>) -> Result<Self, MatrixError> {
        Self::with_threads(l, default_threads())
    }

    /// Preprocess with an explicit worker-thread count.
    pub fn with_threads(l: &Csr<S>, nthreads: usize) -> Result<Self, MatrixError> {
        recblock_matrix::triangular::check_solvable_lower(l)?;
        let in_degree_base: Vec<usize> = (0..l.nrows()).map(|i| l.row_nnz(i)).collect();
        let csc = l.to_csc();
        Ok(SyncFreeSolver { csc, in_degree_base, nthreads: nthreads.max(1) })
    }

    /// Build directly from CSC (diagonal first in each column) — the format
    /// Algorithm 3 is written against. The in-degree preprocessing pass
    /// (`PREPROCESS-SYNCFREE`) scans all row indices.
    pub fn from_csc(csc: Csc<S>, nthreads: usize) -> Result<Self, MatrixError> {
        if !csc.is_solvable_lower() {
            return Err(MatrixError::SingularDiagonal { row: 0 });
        }
        let n = csc.nrows();
        let mut in_degree_base = vec![0usize; n];
        for &i in csc.row_idx() {
            in_degree_base[i] += 1;
        }
        Ok(SyncFreeSolver { csc, in_degree_base, nthreads: nthreads.max(1) })
    }

    /// The CSC matrix being solved.
    pub fn matrix(&self) -> &Csc<S> {
        &self.csc
    }

    /// Worker threads used per solve.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        let n = self.csc.ncols();
        if b.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv rhs",
                expected: n,
                actual: b.len(),
            });
        }
        if n == 0 {
            return Ok(Vec::new());
        }

        let in_degree: Vec<AtomicUsize> =
            self.in_degree_base.iter().map(|&d| AtomicUsize::new(d)).collect();
        let left_sum: Vec<S::Atomic> = (0..n).map(|_| S::Atomic::new(S::ZERO)).collect();
        let x: Vec<S::Atomic> = (0..n).map(|_| S::Atomic::new(S::ZERO)).collect();

        let nthreads = self.nthreads.min(n);
        let csc = &self.csc;
        std::thread::scope(|scope| {
            for t in 0..nthreads {
                let in_degree = &in_degree;
                let left_sum = &left_sum;
                let x = &x;
                scope.spawn(move || {
                    // Static cyclic assignment in ascending order (see the
                    // module docs for why this cannot deadlock).
                    let mut i = t;
                    while i < n {
                        // Busy-wait until only the diagonal dependency
                        // remains (Algorithm 3, lines 8–10).
                        let mut spins = 0u32;
                        while in_degree[i].load(Ordering::Acquire) != 1 {
                            spins += 1;
                            if spins & 0x3f == 0 {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let (rows, vals) = csc.col(i);
                        // Diagonal first: x_i = (b_i − left_sum_i) / d_i.
                        let xi = (b[i] - left_sum[i].load()) / vals[0];
                        x[i].store(xi);
                        // Notify dependents (lines 12–15).
                        for k in 1..rows.len() {
                            let r = rows[k];
                            left_sum[r].fetch_add(vals[k] * xi);
                            in_degree[r].fetch_sub(1, Ordering::AcqRel);
                        }
                        i += nthreads;
                    }
                });
            }
        });

        Ok(x.iter().map(|a| a.load()).collect())
    }
}

impl<S: Scalar> SyncFreeSolver<S> {
    /// Fused multi-right-hand-side solve (the algorithm of Liu et al.'s
    /// follow-up paper, "Fast Synchronization-Free Algorithms for Parallel
    /// Sparse Triangular Solves with Multiple Right-Hand Sides"): the
    /// dependency dataflow runs **once** — each component busy-waits once,
    /// then computes and propagates all `k` columns — so the matrix and the
    /// synchronisation cost are amortised over every right-hand side.
    pub fn solve_multi(
        &self,
        b: &crate::sptrsm::MultiVector<S>,
    ) -> Result<crate::sptrsm::MultiVector<S>, MatrixError> {
        use crate::sptrsm::MultiVector;
        let n = self.csc.ncols();
        if b.n() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsm rhs rows",
                expected: n,
                actual: b.n(),
            });
        }
        let k = b.k();
        if n == 0 || k == 0 {
            return Ok(MultiVector::zeros(n, k));
        }

        let in_degree: Vec<AtomicUsize> =
            self.in_degree_base.iter().map(|&d| AtomicUsize::new(d)).collect();
        // Row-major k-wide accumulators and solutions: component i owns
        // slots i*k..(i+1)*k.
        let left_sum: Vec<S::Atomic> = (0..n * k).map(|_| S::Atomic::new(S::ZERO)).collect();
        let x: Vec<S::Atomic> = (0..n * k).map(|_| S::Atomic::new(S::ZERO)).collect();

        let nthreads = self.nthreads.min(n);
        let csc = &self.csc;
        std::thread::scope(|scope| {
            for t in 0..nthreads {
                let in_degree = &in_degree;
                let left_sum = &left_sum;
                let x = &x;
                let b = &b;
                scope.spawn(move || {
                    let mut i = t;
                    while i < n {
                        let mut spins = 0u32;
                        while in_degree[i].load(Ordering::Acquire) != 1 {
                            spins += 1;
                            if spins & 0x3f == 0 {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let (rows, vals) = csc.col(i);
                        let diag = vals[0];
                        // Solve all k columns of component i at once.
                        for c in 0..k {
                            let xi = (b.get(i, c) - left_sum[i * k + c].load()) / diag;
                            x[i * k + c].store(xi);
                        }
                        // One notification per dependent, k value updates.
                        for kk in 1..rows.len() {
                            let r = rows[kk];
                            let v = vals[kk];
                            for c in 0..k {
                                left_sum[r * k + c].fetch_add(v * x[i * k + c].load());
                            }
                            in_degree[r].fetch_sub(1, Ordering::AcqRel);
                        }
                        i += nthreads;
                    }
                });
            }
        });

        let mut out = MultiVector::zeros(n, k);
        for c in 0..k {
            let col = out.col_mut(c);
            for i in 0..n {
                col[i] = x[i * k + c].load();
            }
        }
        Ok(out)
    }
}

/// Default worker count: physical parallelism, capped to keep busy-wait
/// pressure sane on very wide machines.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check(l: Csr<f64>, nthreads: usize) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let solver = SyncFreeSolver::with_threads(&l, nthreads).unwrap();
        let x = solver.solve(&b).unwrap();
        // Atomic accumulation reorders additions; tolerance must allow for it.
        assert!(
            max_rel_diff(&x, &reference) < 1e-10,
            "nthreads={nthreads} diff={}",
            max_rel_diff(&x, &reference)
        );
    }

    #[test]
    fn single_thread_matches_serial() {
        check(generate::random_lower::<f64>(500, 4.0, 41), 1);
    }

    #[test]
    fn multi_thread_matches_serial_random() {
        for t in [2, 4, 8] {
            check(generate::random_lower::<f64>(1000, 5.0, 42), t);
        }
    }

    #[test]
    fn multi_thread_matches_serial_chain() {
        // Fully serial dependency chain: worst case for busy-waiting.
        check(generate::chain::<f64>(2000, 43), 8);
    }

    #[test]
    fn multi_thread_matches_serial_grid() {
        check(generate::grid2d::<f64>(40, 40, 44), 4);
    }

    #[test]
    fn multi_thread_matches_serial_power_law() {
        // Long columns exercise the atomic notification fan-out.
        check(generate::hub_power_law::<f64>(3000, 12, 3, 50, 45), 8);
    }

    #[test]
    fn diagonal_matrix_fast_path() {
        check(generate::diagonal::<f64>(500, 46), 4);
    }

    #[test]
    fn kkt_two_level_case() {
        check(generate::kkt_like::<f64>(3000, 1200, 4, 47), 8);
    }

    #[test]
    fn from_csc_constructor() {
        let l = generate::random_lower::<f64>(300, 3.0, 48);
        let b = vec![1.0; 300];
        let reference = serial_csr(&l, &b).unwrap();
        let solver = SyncFreeSolver::from_csc(l.to_csc(), 4).unwrap();
        let x = solver.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-10);
    }

    #[test]
    fn rejects_bad_rhs_len() {
        let solver = SyncFreeSolver::new(&Csr::<f64>::identity(3)).unwrap();
        assert!(solver.solve(&[1.0]).is_err());
    }

    #[test]
    fn rejects_singular() {
        let l = Csr::<f64>::try_new(2, 2, vec![0, 1, 2], vec![0, 0], vec![1., 1.]).unwrap();
        assert!(SyncFreeSolver::new(&l).is_err());
    }

    #[test]
    fn empty_system() {
        let solver = SyncFreeSolver::new(&Csr::<f64>::zero(0, 0)).unwrap();
        assert_eq!(solver.solve(&[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn f32_precision_works() {
        let l = generate::banded::<f32>(400, 4, 0.5, 49);
        let b = vec![1.0f32; 400];
        let reference = serial_csr(&l, &b).unwrap();
        let solver = SyncFreeSolver::with_threads(&l, 4).unwrap();
        let x = solver.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-4);
    }

    #[test]
    fn multi_rhs_matches_per_column() {
        use crate::sptrsm::MultiVector;
        let l = generate::layered::<f64>(900, 14, 2.0, generate::LayerShape::Uniform, 51);
        let solver = SyncFreeSolver::with_threads(&l, 6).unwrap();
        let k = 4;
        let data: Vec<f64> = (0..900 * k).map(|i| ((i * 13 % 31) as f64) - 15.0).collect();
        let b = MultiVector::from_columns(900, k, data).unwrap();
        let fused = solver.solve_multi(&b).unwrap();
        for j in 0..k {
            let per_col = solver.solve(b.col(j)).unwrap();
            assert!(
                max_rel_diff(fused.col(j), &per_col) < 1e-10,
                "column {j}: {}",
                max_rel_diff(fused.col(j), &per_col)
            );
        }
    }

    #[test]
    fn multi_rhs_power_law_under_contention() {
        use crate::sptrsm::MultiVector;
        let l = generate::hub_power_law::<f64>(1500, 8, 2, 40, 52);
        let solver = SyncFreeSolver::with_threads(&l, 8).unwrap();
        let k = 3;
        let data: Vec<f64> = (0..1500 * k).map(|i| (i as f64 * 0.01).sin()).collect();
        let b = MultiVector::from_columns(1500, k, data).unwrap();
        let x = solver.solve_multi(&b).unwrap();
        for j in 0..k {
            let r = recblock_matrix::vector::residual_inf(&l, x.col(j), b.col(j)).unwrap();
            assert!(r < 1e-10, "column {j} residual {r}");
        }
    }

    #[test]
    fn multi_rhs_dimension_checks() {
        use crate::sptrsm::MultiVector;
        let solver = SyncFreeSolver::new(&Csr::<f64>::identity(5)).unwrap();
        assert!(solver.solve_multi(&MultiVector::<f64>::zeros(4, 2)).is_err());
        let empty = solver.solve_multi(&MultiVector::<f64>::zeros(5, 0)).unwrap();
        assert_eq!(empty.k(), 0);
    }

    #[test]
    fn repeated_solves_are_consistent() {
        let l = generate::layered::<f64>(1500, 20, 2.0, generate::LayerShape::Uniform, 50);
        let solver = SyncFreeSolver::with_threads(&l, 8).unwrap();
        let b = vec![2.5; 1500];
        let x1 = solver.solve(&b).unwrap();
        for _ in 0..5 {
            let x2 = solver.solve(&b).unwrap();
            assert!(max_rel_diff(&x1, &x2) < 1e-12);
        }
    }
}
