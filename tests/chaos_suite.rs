//! Seeded chaos harness: real RBNET traffic over loopback while a
//! randomized-but-deterministic `FaultPlan` batters the stack — dropped
//! accepts, EAGAIN storms on read and write, swallowed completion wakes,
//! straggling solve chunks, and mid-run worker panics.
//!
//! Invariants, per seed:
//!   * the server process/thread never dies;
//!   * every request produces exactly one outcome — a bit-exact answer or
//!     a typed error, never a hang, a panic, or a silent drop;
//!   * after the plan clears, the same server answers bit-identically and
//!     shuts down cleanly.
//!
//! Seeds are pinned so a failure replays exactly (the fault crate hashes
//! `(seed, point, hit)`); `FAULT_SEEDS` below is the contract with CI.

#![cfg(feature = "faults")]

use recblock_faults::{self as faults, FaultPlan, FaultPoint, Trigger};
use recblock_matrix::{generate, Csr};
use recblock_net::{
    ClientConfig, ErrCode, NetClient, NetConfig, NetCtl, NetError, NetServer, RetryPolicy,
};
use recblock_serve::{ServeConfig, SolveService};
use recblock_store::PlanKey;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

/// The pinned chaos seeds. Changing this list changes what CI covers;
/// append rather than replace when adding coverage.
const FAULT_SEEDS: [u64; 8] = [101, 211, 307, 401, 503, 601, 701, 809];

/// Requests driven through each chaotic round.
const REQUESTS_PER_SEED: usize = 8;

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

struct TestServer {
    addr: SocketAddr,
    ctl: NetCtl,
    handle: thread::JoinHandle<std::io::Result<()>>,
    service: Arc<SolveService<f64>>,
}

impl TestServer {
    fn start() -> TestServer {
        let service = Arc::new(SolveService::<f64>::new(ServeConfig::default().with_workers(1)));
        let mut server =
            NetServer::bind("127.0.0.1:0", NetConfig::default(), service.clone()).expect("bind");
        let addr = server.local_addr().unwrap();
        let ctl = server.ctl();
        let handle = thread::spawn(move || server.run());
        TestServer { addr, ctl, handle, service }
    }

    /// Graceful drain; panics if the event loop died or errored — the
    /// chaos invariant "the process never dies" lives here.
    fn stop(self) {
        self.ctl.shutdown();
        self.handle.join().expect("event loop survived").expect("event loop exited cleanly");
    }
}

fn connect(addr: SocketAddr) -> NetClient {
    let cfg = ClientConfig {
        connect_timeout: Some(Duration::from_secs(10)),
        read_timeout: Some(Duration::from_secs(20)),
        write_timeout: Some(Duration::from_secs(20)),
    };
    NetClient::connect_with(addr, cfg).expect("connect loopback")
}

/// Deterministic uniform draw in [0, 1) from (seed, salt).
fn frac(seed: u64, salt: u64) -> f64 {
    let mut z = seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ salt;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

/// The randomized (but seed-deterministic) transport-chaos plan: every
/// probability is drawn from the seed, so each of the eight rounds
/// stresses a different mixture of fault points.
fn transport_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(FaultPoint::NetAccept, Trigger::Prob(0.15 * frac(seed, 1)))
        .with(FaultPoint::NetRead, Trigger::Prob(0.02 + 0.10 * frac(seed, 2)))
        .with(FaultPoint::NetWrite, Trigger::Prob(0.02 + 0.10 * frac(seed, 3)))
        .with(FaultPoint::NetWake, Trigger::Prob(0.05 * frac(seed, 4)))
        .with(FaultPoint::ExecSlow, Trigger::Prob(0.25 * frac(seed, 5)))
}

fn rhs_for(n: usize, req: usize) -> Vec<f64> {
    (0..n).map(|r| ((r * 29 + req * 13 + 1) as f64 * 0.017).sin()).collect()
}

/// Fixture shared by every chaos round: one matrix, its plan key, and the
/// serial reference answer for every request index.
fn fixture(service: &SolveService<f64>) -> (Csr<f64>, PlanKey, Vec<Vec<f64>>) {
    let n = 180;
    let l = generate::random_lower::<f64>(n, 3.0, 777);
    let expected: Vec<Vec<f64>> = (0..REQUESTS_PER_SEED)
        .map(|i| service.submit(&l, rhs_for(n, i)).unwrap().wait().unwrap())
        .collect();
    (l.clone(), PlanKey::of(&l), expected)
}

#[test]
fn chaos_rounds_are_lossless_and_bit_exact() {
    let _serial = fault_lock();
    let mut total_fired = 0u64;
    let mut total_errors = 0usize;

    for &seed in &FAULT_SEEDS {
        let srv = TestServer::start();
        // Reference answers are computed in-process before the plan arms,
        // so they are untouched by the chaos.
        let (_l, key, expected) = fixture(&srv.service);

        transport_plan(seed).install();
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            jitter: 0.5,
            seed,
        };
        let mut client = connect(srv.addr);
        for (i, want) in expected.iter().enumerate() {
            let b = rhs_for(180, i);
            match client.solve_multi_retry::<f64>("chaos", &key, &[&b], 0, &policy) {
                Ok(cols) => {
                    assert_eq!(cols.len(), 1, "seed {seed} req {i}: one column in, one out");
                    assert_eq!(&cols[0], want, "seed {seed} req {i}: answer must be bit-exact");
                }
                Err(e) => {
                    // Containment means *typed*: transport failures and
                    // transient refusals only, never a protocol wedge.
                    assert!(
                        matches!(
                            e,
                            NetError::Io(_)
                                | NetError::Closed
                                | NetError::Timeout(_)
                                | NetError::Remote {
                                    code: ErrCode::Internal
                                        | ErrCode::Overloaded
                                        | ErrCode::RateLimited,
                                    ..
                                }
                        ),
                        "seed {seed} req {i}: unexpected failure class: {e}"
                    );
                    total_errors += 1;
                    // The connection state is suspect after an error;
                    // a fresh one must work (possibly after retries the
                    // accept-dropper also bedevils).
                    client = connect(srv.addr);
                }
            }
        }
        total_fired += [
            FaultPoint::NetAccept,
            FaultPoint::NetRead,
            FaultPoint::NetWrite,
            FaultPoint::NetWake,
            FaultPoint::ExecSlow,
        ]
        .iter()
        .map(|&p| faults::fired(p))
        .sum::<u64>();
        FaultPlan::clear();

        // Chaos over: the very same server answers bit-identically and
        // drains cleanly.
        let mut calm = connect(srv.addr);
        let got = calm.solve::<f64>("chaos", &key, &rhs_for(180, 0)).unwrap();
        assert_eq!(got, expected[0], "seed {seed}: post-chaos solve is bit-exact");
        let stat = calm.stat().unwrap();
        assert!(!stat.draining, "seed {seed}: server is live after the round");
        drop(calm);
        srv.stop();
    }

    assert!(total_fired > 0, "the chaos plans must actually fire faults (vacuous run otherwise)");
    // Transport chaos is lossy but the retry layer absorbs it; a few
    // typed errors are acceptable, silent drops and panics are not —
    // and both are impossible to reach this line with.
    println!("chaos: {total_fired} faults fired, {total_errors} typed errors surfaced");
}

#[test]
fn chaos_worker_panic_recovers_on_the_same_connection() {
    let _serial = fault_lock();
    let srv = TestServer::start();
    let (_l, key, expected) = fixture(&srv.service);

    // The second dispatched batch panics inside the worker. Requests are
    // strictly sequential, so request index 1 is the poisoned one.
    FaultPlan::new(977).with(FaultPoint::ServeDispatch, Trigger::Nth(2)).install();
    let mut client = connect(srv.addr);
    let mut internal_errors = 0usize;
    for (i, want) in expected.iter().enumerate().take(5) {
        let b = rhs_for(180, i);
        match client.solve::<f64>("panicky", &key, &b) {
            Ok(got) => assert_eq!(&got, want, "req {i}: bit-exact around the panic"),
            Err(NetError::Remote { code, .. }) => {
                assert_eq!(code, ErrCode::Internal, "worker panic surfaces as Internal");
                assert_eq!(i, 1, "exactly the second dispatch was poisoned");
                internal_errors += 1;
                // Note: no reconnect — the *same* connection must keep
                // working after the server contained the panic.
            }
            Err(other) => panic!("req {i}: unexpected transport failure: {other}"),
        }
    }
    FaultPlan::clear();
    assert_eq!(internal_errors, 1, "the injected panic fired exactly once");

    // The panic left a mark on health but took nothing else down.
    let stat = client.stat().unwrap();
    assert_eq!(stat.health, 1, "one contained panic reports Degraded");
    assert!(!stat.draining);
    drop(client);
    srv.stop();
}
