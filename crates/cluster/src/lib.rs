//! recblock-cluster: N solve nodes, one logical service.
//!
//! The serve tier ([`recblock_serve`]) answers solves from one process;
//! the net tier ([`recblock_net`]) puts a TCP boundary in front of it.
//! This crate turns N such processes into a **sharded cluster**:
//!
//! * a seeded consistent-hash [`ring::Ring`] assigns every plan
//!   fingerprint a primary owner plus replicas, with minimal remapping
//!   when membership changes;
//! * RBNET **v2** frames carry membership (`Join`/`Leave`/`RingState`)
//!   and **warm plan migration** (`PlanPush`/`PlanPull` ship `.rbplan`
//!   bytes verbatim, checksums and all) — matrices never cross the
//!   wire, only fingerprints, right-hand sides and preprocessed plans;
//! * any node accepts any solve: owners serve locally, non-owners proxy
//!   over pooled inter-node connections or answer a typed
//!   `Redirect(owner)`;
//! * first-solve builds are **single-flight cluster-wide**: the primary
//!   hands out one TTL-bounded build grant per plan, so concurrent cold
//!   starts across the fleet produce exactly one preprocessing run;
//! * a draining node hands its warm plans to their successors before
//!   leaving, and the inter-node path carries the same deterministic
//!   fault-injection points (`cluster_push`, `cluster_ring`,
//!   `cluster_build`) as the rest of the stack.
//!
//! See `DESIGN.md` §13 for the full protocol walk-through.

#![warn(missing_docs)]

pub mod coordinator;
pub mod ring;

pub use coordinator::{ClusterConfig, Coordinator, NonOwnerPolicy};
pub use ring::Ring;

use recblock_faults::FaultPoint;
use recblock_matrix::{Csr, Scalar};
use recblock_net::{
    ClusterHooks, ErrCode, MemberInfo, NetClient, NetConfig, NetCtl, NetError, NetServer,
    RingStateMsg,
};
use recblock_serve::{PlanSource, ServeError, SolveService};
use recblock_store::PlanKey;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything cluster operations can fail with.
#[derive(Debug)]
pub enum ClusterError {
    /// An inter-node exchange failed.
    Net(NetError),
    /// The local serve tier refused.
    Serve(ServeError),
    /// Listener setup or teardown failed.
    Io(std::io::Error),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Net(e) => write!(f, "cluster network error: {e}"),
            ClusterError::Serve(e) => write!(f, "cluster serve error: {e}"),
            ClusterError::Io(e) => write!(f, "cluster i/o error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        ClusterError::Net(e)
    }
}

impl From<ServeError> for ClusterError {
    fn from(e: ServeError) -> Self {
        ClusterError::Serve(e)
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// How a [`ClusterNode::warm`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmOutcome {
    /// The plan was already resident locally (cache or store).
    AlreadyWarm,
    /// This node won the cluster-wide build grant and preprocessed the
    /// matrix (then pushed the plan to the other owners).
    Built,
    /// Pulled a peer's finished plan over the wire — no local build.
    Pulled,
    /// Another node built it; we waited until the plan landed here.
    Waited,
    /// This node does not own the fingerprint; solves for it will be
    /// proxied or redirected, so there is nothing to warm.
    NotOwner,
    /// Injected fault ([`FaultPoint::ClusterBuild`]): the granted build
    /// "crashed" before producing a plan. The grant expires after its
    /// TTL and a later warm attempt recovers.
    Crashed,
}

/// One running cluster node: a [`NetServer`] front end with a
/// [`Coordinator`] attached, plus the control-plane verbs (`join`,
/// `warm`, `leave`).
pub struct ClusterNode<S: Scalar> {
    coordinator: Arc<Coordinator<S>>,
    service: Arc<SolveService<S>>,
    ctl: NetCtl,
    addr: SocketAddr,
    name: String,
    thread: Option<JoinHandle<()>>,
}

impl<S: Scalar> ClusterNode<S> {
    /// Bind `bind_addr` (port 0 works), attach a coordinator built from
    /// `config`, and start the event loop on its own thread. The node
    /// starts as a single-member ring; call [`ClusterNode::join`] to
    /// merge into an existing cluster.
    pub fn start(
        bind_addr: &str,
        mut config: ClusterConfig,
        mut net_config: NetConfig,
        service: Arc<SolveService<S>>,
    ) -> Result<ClusterNode<S>, ClusterError> {
        // Trace hops carry the ring identity, so a merged timeline can
        // tell nodes apart (an explicitly-set name wins).
        if net_config.node_name == NetConfig::default().node_name {
            net_config.node_name = config.name.clone();
        }
        let server = NetServer::bind(bind_addr, net_config, service.clone())?;
        let addr = server.local_addr()?;
        if config.advertise_addr.is_empty() {
            config.advertise_addr = addr.to_string();
        }
        let name = config.name.clone();
        let coordinator = Coordinator::new(config, service.clone());
        let hooks: Arc<dyn ClusterHooks<S>> = coordinator.clone();
        let mut server = server.with_cluster(hooks);
        let ctl = server.ctl();
        let thread = std::thread::spawn(move || {
            let _ = server.run();
        });
        Ok(ClusterNode { coordinator, service, ctl, addr, name, thread: Some(thread) })
    }

    /// The address the listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's ring identity.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The serve tier behind this node (shared — in-process callers keep
    /// working alongside the cluster).
    pub fn service(&self) -> &Arc<SolveService<S>> {
        &self.service
    }

    /// The coordinator, for tests that inspect ring or grant state.
    pub fn coordinator(&self) -> &Arc<Coordinator<S>> {
        &self.coordinator
    }

    /// Current ring view.
    pub fn ring(&self) -> RingStateMsg {
        self.coordinator.ring_state()
    }

    /// Join the cluster reachable at `seed_addr`: announce ourselves,
    /// adopt the merged view, then gossip it to every member so the
    /// whole fleet converges without a central registry.
    pub fn join(&self, seed_addr: &str) -> Result<RingStateMsg, ClusterError> {
        let mut c = NetClient::connect(seed_addr)?;
        let member =
            MemberInfo { name: self.name.clone(), addr: self.coordinator.advertise_addr() };
        let view = c.join(&member)?;
        let ours = self.coordinator.adopt(&view);
        self.broadcast_ring(&ours);
        Ok(self.coordinator.ring_state())
    }

    /// Push our ring view to every other member, folding their replies
    /// back in (anti-entropy both ways). Dead peers are skipped.
    fn broadcast_ring(&self, view: &RingStateMsg) {
        for m in &view.members {
            if m.name == self.name {
                continue;
            }
            if let Ok(mut c) = NetClient::connect(m.addr.as_str()) {
                if let Ok(theirs) = c.ring_state(view) {
                    self.coordinator.adopt(&theirs);
                }
            }
        }
    }

    /// Make the plan for `l` warm **on this node, if it owns it**,
    /// building at most once across the whole cluster:
    ///
    /// * non-owners return [`WarmOutcome::NotOwner`] immediately;
    /// * the primary either finds the plan resident, claims the build
    ///   grant and builds, or waits for a granted peer's push to land;
    /// * replicas pull from the primary with *build intent* — exactly
    ///   one puller is granted the build (`PlanNotFound`), the rest poll
    ///   through `BuildInProgress` until the plan is pullable.
    ///
    /// Every node of a fleet can call this concurrently for the same
    /// matrix; the grant protocol collapses the fleet-wide work to one
    /// preprocessing run (asserted by summing `plan_builds` in tests).
    pub fn warm(&self, l: &Csr<S>) -> Result<WarmOutcome, ClusterError> {
        let key = PlanKey::of(l);
        let owners = self.coordinator.owners_of(&key);
        if owners.len() <= 1 {
            // Single-member ring (or empty): plain local warm.
            let src = self.service.warm_status(l)?;
            return Ok(if src == PlanSource::Built {
                WarmOutcome::Built
            } else {
                WarmOutcome::AlreadyWarm
            });
        }
        if !owners.iter().any(|(n, _)| n == &self.name) {
            return Ok(WarmOutcome::NotOwner);
        }
        if self.service.resolve_key(key)?.is_some() {
            return Ok(WarmOutcome::AlreadyWarm);
        }
        if owners[0].0 == self.name {
            self.warm_as_primary(l, key, &owners)
        } else {
            self.warm_as_replica(l, key, &owners)
        }
    }

    fn warm_as_primary(
        &self,
        l: &Csr<S>,
        key: PlanKey,
        owners: &[(String, String)],
    ) -> Result<WarmOutcome, ClusterError> {
        if self.coordinator.try_grant(&key) {
            // Injected fault: the granted builder dies before building.
            // The grant is deliberately left to expire — recovery is the
            // TTL's job, which the chaos suite asserts.
            if recblock_faults::fires(FaultPoint::ClusterBuild) {
                return Ok(WarmOutcome::Crashed);
            }
            let src = self.service.warm_status(l)?;
            self.coordinator.clear_grant(&key);
            self.push_plan_to(&key, &owners[1..]);
            return Ok(if src == PlanSource::Built {
                WarmOutcome::Built
            } else {
                WarmOutcome::AlreadyWarm
            });
        }
        // A replica holds the grant: wait for its push to land, up to
        // the grant TTL (after which the grant is stale and ours).
        let ttl = self.coordinator.config().grant_ttl;
        let retry = self.coordinator.config().pull_retry;
        let start = Instant::now();
        while start.elapsed() < ttl {
            if self.service.resolve_key(key)?.is_some() {
                return Ok(WarmOutcome::Waited);
            }
            std::thread::sleep(retry);
        }
        // The builder never delivered; claim the now-expired grant.
        let src = self.service.warm_status(l)?;
        self.coordinator.clear_grant(&key);
        self.push_plan_to(&key, &owners[1..]);
        Ok(if src == PlanSource::Built { WarmOutcome::Built } else { WarmOutcome::AlreadyWarm })
    }

    fn warm_as_replica(
        &self,
        l: &Csr<S>,
        key: PlanKey,
        owners: &[(String, String)],
    ) -> Result<WarmOutcome, ClusterError> {
        let primary_addr = owners[0].1.as_str();
        let retry = self.coordinator.config().pull_retry;
        let mut client: Option<NetClient> = None;
        for _ in 0..self.coordinator.config().pull_attempts.max(1) {
            if client.is_none() {
                match NetClient::connect(primary_addr) {
                    Ok(c) => client = Some(c),
                    Err(_) => {
                        // Primary unreachable: build locally, degraded
                        // but correct (the plan is derivable from `l`).
                        self.service.warm_status(l)?;
                        return Ok(WarmOutcome::Built);
                    }
                }
            }
            match client.as_mut().expect("connected above").pull_plan(&key, true) {
                Ok(bytes) => {
                    self.service.import_plan_bytes(key, &bytes)?;
                    self.service
                        .shared_metrics()
                        .cluster_plans_received
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(WarmOutcome::Pulled);
                }
                Err(NetError::Remote { code: ErrCode::PlanNotFound, .. }) => {
                    // The grant is ours. (Or we crash first, per fault.)
                    if recblock_faults::fires(FaultPoint::ClusterBuild) {
                        return Ok(WarmOutcome::Crashed);
                    }
                    self.service.warm_status(l)?;
                    self.push_plan_to(&key, owners);
                    return Ok(WarmOutcome::Built);
                }
                Err(NetError::Remote { code: ErrCode::BuildInProgress, .. }) => {
                    std::thread::sleep(retry);
                }
                Err(NetError::Remote { .. }) => {
                    // Typed but unexpected (e.g. the primary is not in a
                    // cluster): fall back to a local build.
                    self.service.warm_status(l)?;
                    return Ok(WarmOutcome::Built);
                }
                Err(_) => {
                    // Transport trouble: reconnect on the next attempt.
                    client = None;
                    std::thread::sleep(retry);
                }
            }
        }
        // The builder is wedged past our patience: build locally.
        self.service.warm_status(l)?;
        Ok(WarmOutcome::Built)
    }

    /// Ship our copy of `key` to each of `targets` (skipping ourselves).
    /// Best-effort: a dead target just misses its copy — pull-on-warm
    /// and grant TTLs recover later.
    fn push_plan_to(&self, key: &PlanKey, targets: &[(String, String)]) {
        let bytes = match self.service.export_plan_bytes(*key) {
            Ok(Some(b)) => b,
            _ => return,
        };
        let metrics = self.service.shared_metrics();
        for (name, addr) in targets {
            if name == &self.name {
                continue;
            }
            // Injected fault: the push is silently dropped before the
            // bytes leave this node (lost datagram semantics). The
            // target simply never receives its copy.
            if recblock_faults::fires(FaultPoint::ClusterPush) {
                continue;
            }
            if let Ok(mut c) = NetClient::connect(addr.as_str()) {
                if c.push_plan(key, &bytes).is_ok() {
                    metrics.cluster_plans_pushed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Leave the cluster gracefully: hand every warm plan to the owners
    /// it will have after our departure, announce the leave to every
    /// peer, then drain the listener and stop.
    pub fn leave(mut self) -> Result<(), ClusterError> {
        let ring_after = {
            let mut r = self.coordinator.ring_snapshot();
            r.remove(&self.name);
            r
        };
        if !ring_after.is_empty() {
            for key in self.service.warm_keys() {
                let successors: Vec<(String, String)> = ring_after
                    .owners(&key)
                    .iter()
                    .map(|(n, a)| (n.to_string(), a.to_string()))
                    .collect();
                self.push_plan_to(&key, &successors);
            }
            for (name, addr) in ring_after.members() {
                if name == self.name {
                    continue;
                }
                if let Ok(mut c) = NetClient::connect(addr) {
                    let _ = c.leave(&self.name);
                }
            }
        }
        self.coordinator.remove_member(&self.name.clone());
        self.shutdown();
        Ok(())
    }

    /// Stop the event loop without the leave protocol (simulates a
    /// crash in tests; peers keep a stale view until they notice).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.ctl.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl<S: Scalar> Drop for ClusterNode<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}
