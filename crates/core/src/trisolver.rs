//! Per-block triangular solver: one preprocessed kernel instance per
//! triangular block, built according to the adaptive selection.

use crate::adaptive::TriKernel;
use recblock_gpu_sim::{CostParams, DeviceSpec, KernelTime, TriProfile};
use recblock_kernels::exec::{ExecPool, TuneParams};
use recblock_kernels::sptrsv::{
    parallel_diag, parallel_diag_into, CusparseLikeSolver, LevelSetSolver, SyncFreeSolver,
};
use recblock_kernels::trace::{EventKind, SolveTrace};
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, MatrixError, Scalar};

/// A triangular block bound to its selected kernel, ready to solve.
#[derive(Debug, Clone)]
pub enum TriSolver<S> {
    /// Diagonal-only block (`SPTRSV-COMPLETELYPARALLEL`).
    Diag(Csr<S>),
    /// Level-set schedule.
    LevelSet(LevelSetSolver<S>),
    /// Sync-free dataflow.
    SyncFree(SyncFreeSolver<S>),
    /// cuSPARSE-like merged-launch schedule.
    Cusparse(CusparseLikeSolver<S>),
}

impl<S: Scalar> TriSolver<S> {
    /// Build the solver variant the selection chose, with default engine
    /// tuning. `levels` must be the decomposition of `l` (the caller has it
    /// from block profiling).
    pub fn build(
        kernel: TriKernel,
        l: Csr<S>,
        levels: &LevelSets,
        syncfree_threads: usize,
    ) -> Result<Self, MatrixError> {
        Self::build_tuned(kernel, l, levels, syncfree_threads, TuneParams::default())
    }

    /// As [`TriSolver::build`] with explicit engine tuning — the blocked
    /// executor threads its [`TuneParams`] through so every block's schedule
    /// is planned under the plan-wide thresholds.
    pub fn build_tuned(
        kernel: TriKernel,
        l: Csr<S>,
        levels: &LevelSets,
        syncfree_threads: usize,
        tune: TuneParams,
    ) -> Result<Self, MatrixError> {
        Ok(match kernel {
            TriKernel::CompletelyParallel => TriSolver::Diag(l),
            TriKernel::LevelSet => {
                TriSolver::LevelSet(LevelSetSolver::with_tune(l, levels.clone(), tune))
            }
            TriKernel::SyncFree => {
                TriSolver::SyncFree(SyncFreeSolver::with_threads(&l, syncfree_threads)?)
            }
            TriKernel::CusparseLike => {
                TriSolver::Cusparse(CusparseLikeSolver::with_levels_tuned(l, levels.clone(), tune)?)
            }
        })
    }

    /// Analyse a triangular block, run the adaptive selection, and build the
    /// chosen solver together with the block's cost-model profile.
    pub fn build_adaptive(
        l: Csr<S>,
        selector: &crate::adaptive::Selector,
        syncfree_threads: usize,
    ) -> Result<(Self, TriProfile), MatrixError> {
        Self::build_adaptive_tuned(l, selector, syncfree_threads, TuneParams::default())
    }

    /// As [`TriSolver::build_adaptive`] with explicit engine tuning.
    pub fn build_adaptive_tuned(
        l: Csr<S>,
        selector: &crate::adaptive::Selector,
        syncfree_threads: usize,
        tune: TuneParams,
    ) -> Result<(Self, TriProfile), MatrixError> {
        recblock_matrix::triangular::check_solvable_lower(&l)?;
        let levels = LevelSets::analyse_unchecked(&l);
        let profile = TriProfile::analyse(&l, &levels);
        let kernel = selector.tri_shaped(profile.nnz_per_row(), profile.nlevels(), l.nrows());
        let solver = Self::build_tuned(kernel, l, &levels, syncfree_threads, tune)?;
        Ok((solver, profile))
    }

    /// Rebuild this block's schedule under different engine tuning, keeping
    /// the kernel the selection chose. The schedule-based variants
    /// (level-set, cuSPARSE-like) re-plan from their already-analysed level
    /// decomposition — no reorder, no selection, no profiling. The diagonal
    /// and sync-free variants have no tune-dependent schedule and are cloned
    /// as-is.
    pub fn retuned(&self, tune: TuneParams) -> Result<Self, MatrixError> {
        Ok(match self {
            TriSolver::Diag(l) => TriSolver::Diag(l.clone()),
            TriSolver::LevelSet(s) => TriSolver::LevelSet(LevelSetSolver::with_tune(
                s.matrix().clone(),
                s.levels().clone(),
                tune,
            )),
            TriSolver::SyncFree(s) => TriSolver::SyncFree(s.clone()),
            TriSolver::Cusparse(s) => TriSolver::Cusparse(CusparseLikeSolver::with_levels_tuned(
                s.matrix().clone(),
                s.levels().clone(),
                tune,
            )?),
        })
    }

    /// Rows (= columns) of the block this solver was built for.
    pub fn n(&self) -> usize {
        match self {
            TriSolver::Diag(l) => l.nrows(),
            TriSolver::LevelSet(s) => s.matrix().nrows(),
            TriSolver::SyncFree(s) => s.matrix().nrows(),
            TriSolver::Cusparse(s) => s.matrix().nrows(),
        }
    }

    /// Stored nonzeros of the block.
    pub fn nnz(&self) -> usize {
        match self {
            TriSolver::Diag(l) => l.nnz(),
            TriSolver::LevelSet(s) => s.matrix().nnz(),
            TriSolver::SyncFree(s) => s.matrix().nnz(),
            TriSolver::Cusparse(s) => s.matrix().nnz(),
        }
    }

    /// Which kernel this solver embodies.
    pub fn kernel(&self) -> TriKernel {
        match self {
            TriSolver::Diag(_) => TriKernel::CompletelyParallel,
            TriSolver::LevelSet(_) => TriKernel::LevelSet,
            TriSolver::SyncFree(_) => TriKernel::SyncFree,
            TriSolver::Cusparse(_) => TriKernel::CusparseLike,
        }
    }

    /// `(runs, parallel launches)` of the preplanned engine schedule, for
    /// the schedule-based variants (level-set, cuSPARSE-like). `None` for
    /// the diagonal and sync-free variants, which have no level schedule.
    pub fn schedule_stats(&self) -> Option<(usize, usize)> {
        match self {
            TriSolver::LevelSet(s) => Some((s.schedule().nruns(), s.schedule().nparallel())),
            TriSolver::Cusparse(s) => Some((s.schedule().nruns(), s.schedule().nparallel())),
            TriSolver::Diag(_) | TriSolver::SyncFree(_) => None,
        }
    }

    /// How the block synchronises at solve time: `"p2p"` or `"level-sync"`
    /// for the schedule-based variants, `None` for diagonal and sync-free
    /// blocks (no level schedule at all).
    pub fn schedule_mode(&self) -> Option<&'static str> {
        match self {
            TriSolver::LevelSet(s) => Some(s.schedule_mode()),
            TriSolver::Cusparse(_) => Some("level-sync"),
            TriSolver::Diag(_) | TriSolver::SyncFree(_) => None,
        }
    }

    /// Shape of the compiled point-to-point task graph, when this block
    /// runs in p2p mode.
    pub fn task_stats(&self) -> Option<recblock_kernels::TaskGraphStats> {
        match self {
            TriSolver::LevelSet(s) => s.task_stats(),
            _ => None,
        }
    }

    /// Solve `L x = b` for this block.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        match self {
            TriSolver::Diag(l) => parallel_diag(l, b),
            TriSolver::LevelSet(s) => s.solve(b),
            TriSolver::SyncFree(s) => s.solve(b),
            TriSolver::Cusparse(s) => s.solve(b),
        }
    }

    /// Solve `L x = b` into a caller-provided buffer — the steady-state hot
    /// path. The schedule-based variants (diag, level-set, cuSPARSE-like)
    /// execute preplanned schedules with zero heap allocations; the
    /// sync-free variant needs per-solve atomic state, so it allocates and
    /// copies (callers wanting strict zero-allocation solves should select
    /// away from it — see `BlockedOptions`).
    pub fn solve_into(&self, b: &[S], x: &mut [S]) -> Result<(), MatrixError> {
        match self {
            TriSolver::Diag(l) => parallel_diag_into(l, b, x, ExecPool::global()),
            TriSolver::LevelSet(s) => s.solve_into(b, x),
            TriSolver::SyncFree(s) => {
                let t0 = SolveTrace::start();
                let v = s.solve(b)?;
                if x.len() != v.len() {
                    return Err(MatrixError::DimensionMismatch {
                        what: "sptrsv output",
                        expected: v.len(),
                        actual: x.len(),
                    });
                }
                x.copy_from_slice(&v);
                SolveTrace::finish(t0, EventKind::SyncFreeKernel, 0, v.len() as u32, 0);
                Ok(())
            }
            TriSolver::Cusparse(s) => s.solve_into(b, x),
        }
    }

    /// Solve `L X = B` for several right-hand sides. The level-set variant
    /// fuses the columns through one shared schedule; the others iterate
    /// (their per-solve state is not shareable across columns).
    pub fn solve_multi(
        &self,
        b: &recblock_kernels::sptrsm::MultiVector<S>,
    ) -> Result<recblock_kernels::sptrsm::MultiVector<S>, MatrixError> {
        use rayon::prelude::*;
        use recblock_kernels::sptrsm::{sptrsm_levelset, MultiVector};
        match self {
            TriSolver::Diag(l) => {
                let n = l.nrows();
                let mut x = MultiVector::zeros(n, b.k());
                let d = l.vals();
                x.as_mut_slice()
                    .par_chunks_mut(n.max(1))
                    .zip(b.as_slice().par_chunks(n.max(1)))
                    .for_each(|(xc, bc)| {
                        for i in 0..n {
                            xc[i] = bc[i] / d[i];
                        }
                    });
                Ok(x)
            }
            TriSolver::LevelSet(s) => sptrsm_levelset(s.matrix(), s.levels(), b),
            TriSolver::SyncFree(s) => s.solve_multi(b),
            TriSolver::Cusparse(s) => {
                let mut x = MultiVector::zeros(b.n(), b.k());
                for j in 0..b.k() {
                    let xj = s.solve(b.col(j))?;
                    x.col_mut(j).copy_from_slice(&xj);
                }
                Ok(x)
            }
        }
    }

    /// Predicted GPU time of this block's solve under the cost model.
    pub fn simulated_time(
        &self,
        profile: &TriProfile,
        working_set: usize,
        dev: &DeviceSpec,
        params: &CostParams,
    ) -> KernelTime {
        self.simulated_time_bytes(profile, S::BYTES, working_set, dev, params)
    }

    /// As [`TriSolver::simulated_time`] but with an explicit element width,
    /// so one built structure can be priced at both precisions (Figure 7).
    pub fn simulated_time_bytes(
        &self,
        profile: &TriProfile,
        scalar_bytes: usize,
        working_set: usize,
        dev: &DeviceSpec,
        params: &CostParams,
    ) -> KernelTime {
        use recblock_gpu_sim::cost;
        match self.kernel() {
            TriKernel::CompletelyParallel => {
                cost::sptrsv_diag(profile.n, scalar_bytes, working_set, dev, params)
            }
            TriKernel::LevelSet => {
                cost::sptrsv_levelset(profile, scalar_bytes, working_set, dev, params)
            }
            TriKernel::SyncFree => {
                cost::sptrsv_syncfree(profile, scalar_bytes, working_set, dev, params)
            }
            TriKernel::CusparseLike => {
                cost::sptrsv_cusparse(profile, scalar_bytes, working_set, dev, params)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check_kernel(kernel: TriKernel, l: Csr<f64>) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let levels = LevelSets::analyse(&l).unwrap();
        let s = TriSolver::build(kernel, l, &levels, 4).unwrap();
        assert_eq!(s.kernel(), kernel);
        let x = s.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-10, "{:?}", kernel);
    }

    #[test]
    fn all_variants_solve_correctly() {
        check_kernel(TriKernel::CompletelyParallel, generate::diagonal::<f64>(300, 1));
        check_kernel(TriKernel::LevelSet, generate::grid2d::<f64>(20, 20, 2));
        check_kernel(TriKernel::SyncFree, generate::random_lower::<f64>(500, 4.0, 3));
        check_kernel(TriKernel::CusparseLike, generate::chain::<f64>(300, 4));
    }

    #[test]
    fn simulated_time_positive() {
        let l = generate::grid2d::<f64>(15, 15, 5);
        let levels = LevelSets::analyse(&l).unwrap();
        let profile = TriProfile::analyse(&l, &levels);
        let s = TriSolver::build(TriKernel::LevelSet, l, &levels, 4).unwrap();
        let t = s.simulated_time(
            &profile,
            1 << 20,
            &DeviceSpec::titan_rtx_turing(),
            &CostParams::default(),
        );
        assert!(t.total_s > 0.0);
        assert_eq!(t.launches, profile.nlevels());
    }
}
